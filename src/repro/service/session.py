"""One tuning session: a job, an optimizer, a budget and a lifecycle.

:class:`TuningSession` wraps the ask/tell step API of
:class:`~repro.core.optimizer.BaseOptimizer` with everything a long-running
service needs per tenant: explicit lifecycle states, per-session metrics and
JSON checkpoint/resume (built on the serialisation helpers of
:mod:`repro.experiments.persistence`).

Checkpoints deliberately exclude the job table and the optimizer object:
both are deterministic to reconstruct (workload tables are generated
analytically, optimizers from their constructor arguments), so a checkpoint
stores only the *progress* of the run — observations, remaining bootstrap
queue, budget accounting and the exact random-generator state.  Restoring
replays every observation through the optimizer's recording hook, so
extensions that accumulate side data (e.g. constrained-metric values) resume
faithfully too.
"""

from __future__ import annotations

import json
import time
from collections import deque
from enum import Enum
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.optimizer import BaseOptimizer, OptimizationResult, SessionState
from repro.core.space import Configuration, EncodedSpace
from repro.core.state import Observation, OptimizerState
from repro.workloads.base import Job, JobOutcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.api import JobSpec

__all__ = ["SessionStatus", "TuningSession"]

_CHECKPOINT_VERSION = 1


class SessionStatus(Enum):
    """Lifecycle of a tuning session.

    PENDING
        Submitted but not started: no budget resolved, nothing profiled.
    BOOTSTRAPPING
        Profiling the initial LHS sample.
    RUNNING
        Past the bootstrap; the optimizer decides every next configuration.
    DONE
        Terminal: the optimizer converged or profiled the whole space.
    EXHAUSTED
        Terminal: the search budget ran out before the optimizer stopped.
    CANCELLED
        Terminal: the tenant (or the service) cancelled the session before it
        finished; no recommendation is produced.
    """

    PENDING = "pending"
    BOOTSTRAPPING = "bootstrapping"
    RUNNING = "running"
    DONE = "done"
    EXHAUSTED = "exhausted"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (
            SessionStatus.DONE,
            SessionStatus.EXHAUSTED,
            SessionStatus.CANCELLED,
        )


class TuningSession:
    """One tenant of the tuning service.

    Parameters
    ----------
    session_id:
        Unique identifier within the service.
    job / optimizer:
        What to tune and with what strategy.  The session owns the optimizer
        instance: per-run mutable state (price caches, constraint metrics)
        lives on it, so an instance must not be shared across live sessions.
    tmax / budget / budget_multiplier / n_bootstrap / initial_configs / seed:
        Forwarded to :meth:`~repro.core.optimizer.BaseOptimizer.start`.
    tenant / priority / deadline_s:
        Multi-tenant metadata: the tenant the session is accounted against
        (quotas, gateway isolation), its scheduling weight for the
        ``"priority"`` policy (larger runs first) and an optional soft
        deadline in seconds from submission for the ``"deadline"`` (EDF)
        policy.  None of these affect the optimization trace — only *when*
        the session advances relative to its peers.
    created_at:
        Submission wall-clock timestamp (``time.time()``); EDF orders by
        ``created_at + deadline_s``.  Supplied explicitly only when
        restoring a checkpoint.
    """

    def __init__(
        self,
        session_id: str,
        job: Job,
        optimizer: BaseOptimizer,
        *,
        tmax: float | None = None,
        budget: float | None = None,
        budget_multiplier: float = 3.0,
        n_bootstrap: int | None = None,
        initial_configs: list[Configuration] | None = None,
        seed: int | None = None,
        tenant: str | None = None,
        priority: int = 0,
        deadline_s: float | None = None,
        created_at: float | None = None,
    ) -> None:
        self.session_id = session_id
        self.job = job
        self.optimizer = optimizer
        self.tenant = tenant
        self.priority = priority
        self.deadline_s = deadline_s
        self.created_at = created_at if created_at is not None else time.time()
        self.options: dict[str, Any] = {
            "tmax": tmax,
            "budget": budget,
            "budget_multiplier": budget_multiplier,
            "n_bootstrap": n_bootstrap,
            "initial_configs": initial_configs,
            "seed": seed,
        }
        self.state: SessionState | None = None
        self._result: OptimizationResult | None = None
        self._cancelled = False
        # Service-level telemetry (bound by TuningService via bind_metrics);
        # every hook below is a no-op for sessions used standalone.
        self._metrics: dict[str, Any] | None = None
        self._created_pc = time.perf_counter()
        self._queue_wait_seconds: float | None = None
        self._pending_since: float | None = None
        self._finish_recorded = False
        self._phase_flushed: dict[str, float] = {}
        #: The declarative JobSpec this session was submitted with, when it
        #: came through the protocol layer (TuningService.submit_spec / a
        #: TuningClient).  Sessions with a spec are fully reconstructable
        #: from their checkpoint alone, which the service-level registry
        #: checkpoint (TuningService.save_registry) relies on.
        self.spec: "JobSpec | None" = None

    # -- lifecycle ----------------------------------------------------------
    @property
    def status(self) -> SessionStatus:
        if self._cancelled:
            return SessionStatus.CANCELLED
        if self.state is None:
            return SessionStatus.PENDING
        if self.state.finished:
            if self.state.finish_reason == "budget":
                return SessionStatus.EXHAUSTED
            return SessionStatus.DONE
        if self.state.in_bootstrap:
            return SessionStatus.BOOTSTRAPPING
        return SessionStatus.RUNNING

    @property
    def started(self) -> bool:
        return self.state is not None

    def start(self) -> None:
        """Resolve budgets and the bootstrap sample; idempotent."""
        if self.state is None:
            self.state = self.optimizer.start(self.job, **self.options)

    def bind_metrics(self, registry) -> None:
        """Attach service-level instruments (a :class:`MetricsRegistry`).

        Idempotent; called by the service when it adopts the session.  The
        queue-wait clock starts at construction, so sessions should be bound
        before their first :meth:`ask`.
        """
        self._metrics = {
            "queue_wait": registry.histogram(
                "session_queue_wait_seconds",
                "Seconds between submission and the session's first ask",
                labels=("tenant",),
            ),
            "decision": registry.histogram(
                "session_decision_seconds",
                "Wall-clock seconds per next-configuration decision",
                labels=("tenant", "optimizer"),
            ),
            "run": registry.histogram(
                "session_run_seconds",
                "Seconds between a config being handed out and its outcome told",
                labels=("tenant",),
            ),
            "steps": registry.counter(
                "session_steps_total",
                "Completed ask -> run -> tell cycles",
                labels=("tenant",),
            ),
            "budget": registry.counter(
                "session_budget_spent_total",
                "Total profiling cost charged against session budgets",
                labels=("tenant",),
            ),
            "finished": registry.counter(
                "sessions_finished_total",
                "Sessions that reached a terminal status",
                labels=("tenant", "status"),
            ),
            "phase": registry.counter(
                "optimizer_phase_seconds_total",
                "Optimizer decision time split by phase (fit/acquisition/explore_path)",
                labels=("tenant", "optimizer", "phase"),
            ),
        }

    def _flush_phase_seconds(self) -> None:
        """Export newly accumulated per-phase decision seconds as counter deltas."""
        assert self._metrics is not None and self.state is not None
        tenant = self.tenant or ""
        for phase, total in self.state.phase_timings.seconds.items():
            delta = total - self._phase_flushed.get(phase, 0.0)
            if delta > 0:
                self._metrics["phase"].inc(
                    delta, tenant=tenant, optimizer=self.optimizer.name, phase=phase
                )
                self._phase_flushed[phase] = total

    def _record_finished(self) -> None:
        """Count the terminal transition exactly once per session."""
        if self._metrics is None or self._finish_recorded:
            return
        self._finish_recorded = True
        self._metrics["finished"].inc(tenant=self.tenant or "", status=self.status.value)

    def ask(self) -> Configuration | None:
        """Next configuration to profile (starting the session if needed)."""
        if self._cancelled:
            return None
        self.start()
        if self._queue_wait_seconds is None:
            self._queue_wait_seconds = time.perf_counter() - self._created_pc
            if self._metrics is not None:
                self._metrics["queue_wait"].observe(
                    self._queue_wait_seconds, tenant=self.tenant or ""
                )
        n_decisions = len(self.state.decision_seconds)
        config = self.optimizer.ask(self.state)
        if self._metrics is not None:
            if len(self.state.decision_seconds) > n_decisions:
                self._metrics["decision"].observe(
                    self.state.decision_seconds[-1],
                    tenant=self.tenant or "",
                    optimizer=self.optimizer.name,
                )
            self._flush_phase_seconds()
            if config is None and self.state.finished:
                self._record_finished()
        if config is not None:
            self._pending_since = time.perf_counter()
        return config

    def bootstrap_batch(self) -> list[Configuration]:
        """The remaining pre-declared bootstrap configurations, in ask order.

        The bootstrap sample is fixed at :meth:`start` time and independent of
        any observation, so a pool may profile all of it concurrently — as
        long as outcomes are still *told* in queue order, which keeps the
        observation trace bit-identical to a serial run.  The service's
        ``bootstrap_parallel`` mode builds on exactly this contract.
        """
        self.start()
        return list(self.state.bootstrap_queue)

    def tell(self, outcome: JobOutcome) -> Observation:
        """Report the outcome of the configuration handed out by :meth:`ask`."""
        if self.state is None:
            raise RuntimeError(f"session {self.session_id!r} was never asked")
        observation = self.optimizer.tell(self.state, outcome)
        if self._metrics is not None:
            tenant = self.tenant or ""
            if self._pending_since is not None:
                self._metrics["run"].observe(
                    time.perf_counter() - self._pending_since, tenant=tenant
                )
            self._metrics["steps"].inc(tenant=tenant)
            if observation.cost > 0:
                self._metrics["budget"].inc(observation.cost, tenant=tenant)
        self._pending_since = None
        return observation

    def step(self) -> bool:
        """Advance one full ask → run → tell cycle inline.

        Returns ``False`` once the session is terminal.
        """
        if self.status.terminal:
            return False
        config = self.ask()
        if config is None:
            return False
        self.tell(self.job.run(config))
        return True

    def cancel(self) -> bool:
        """Cancel the session; returns whether the call changed anything.

        Cancelling an already-terminal session is a no-op.  A cancelled
        session keeps its state (observations so far stay inspectable and
        checkpointable) but produces no recommendation: :meth:`result` raises
        and :meth:`step`/:meth:`ask` refuse to advance it.
        """
        if self.status.terminal:
            return False
        self._cancelled = True
        self._record_finished()
        return True

    def discard_pending(self) -> None:
        """Drop the in-flight run handed out by :meth:`ask` without a tell.

        Only the service uses this, for runs whose outcome must be thrown
        away (the session was cancelled while the run executed); the budget
        is not charged and the session becomes checkpointable again.
        """
        if self.state is not None:
            self.state.pending = None
        self._pending_since = None

    def result(self) -> OptimizationResult:
        """The final result; raises unless the session completed."""
        if self.status == SessionStatus.CANCELLED:
            raise RuntimeError(f"session {self.session_id!r} was cancelled")
        if not self.status.terminal:
            raise RuntimeError(
                f"session {self.session_id!r} is {self.status.value}, not terminal"
            )
        if self._result is None:
            self._result = self.optimizer.finish(self.state)
        return self._result

    # -- metrics ------------------------------------------------------------
    def metrics(self) -> dict[str, Any]:
        """A JSON-safe snapshot of the session's progress."""
        snapshot: dict[str, Any] = {
            "session_id": self.session_id,
            "job": self.job.name,
            "optimizer": self.optimizer.name,
            "status": self.status.value,
            "tenant": self.tenant,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
        }
        if self.state is None:
            return snapshot
        state = self.state
        snapshot.update(
            {
                "n_explorations": state.n_explorations,
                "n_bootstrap": state.n_bootstrap,
                "bootstrap_pending": len(state.bootstrap_queue),
                "budget": state.budget,
                "budget_spent": state.budget_spent,
                "budget_remaining": state.budget_remaining,
                "n_untested": state.optimizer_state.n_untested,
                "decisions": len(state.decision_seconds),
                "mean_decision_seconds": (
                    float(np.mean(state.decision_seconds))
                    if state.decision_seconds
                    else 0.0
                ),
                "finish_reason": state.finish_reason,
                "queue_wait_seconds": self._queue_wait_seconds,
                "phase_seconds": state.phase_timings.as_dict(),
            }
        )
        return snapshot

    # -- checkpoint / resume -------------------------------------------------
    def checkpoint(self) -> dict:
        """Serialise the session's progress to a JSON-safe dict.

        A checkpoint may only be taken between steps (no profiling run in
        flight): the outcome of an in-flight run cannot be serialised.
        """
        from repro.experiments.persistence import observation_to_dict

        options = dict(self.options)
        if options.get("initial_configs") is not None:
            options["initial_configs"] = [
                c.as_dict() for c in options["initial_configs"]
            ]
        payload: dict[str, Any] = {
            "version": _CHECKPOINT_VERSION,
            "session_id": self.session_id,
            "job_name": self.job.name,
            "optimizer_name": self.optimizer.name,
            "status": self.status.value,
            "options": options,
            "spec": self.spec.to_dict() if self.spec is not None else None,
            "tenant": self.tenant,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "created_at": self.created_at,
            "state": None,
        }
        if self.state is None:
            return payload
        if self.state.pending is not None:
            raise RuntimeError(
                "cannot checkpoint with a profiling run in flight; tell() it first"
            )
        state = self.state
        payload["state"] = {
            "tmax": state.tmax,
            "budget": state.budget,
            "n_bootstrap": state.n_bootstrap,
            "budget_remaining": state.optimizer_state.budget_remaining,
            "bootstrap_queue": [c.as_dict() for c in state.bootstrap_queue],
            "observations": [
                observation_to_dict(o) for o in state.optimizer_state.observations
            ],
            "decision_seconds": list(state.decision_seconds),
            "finished": state.finished,
            "finish_reason": state.finish_reason,
            "rng_state": state.rng.bit_generator.state,
        }
        return payload

    def save(self, path: str | Path) -> Path:
        """Write :meth:`checkpoint` to ``path`` as JSON.

        The write is atomic and durable (unique scratch file, fsync, rename):
        a crash mid-save leaves either the previous checkpoint or the
        complete new one, never a truncated file.
        """
        from repro.ioutil import atomic_write_json

        return atomic_write_json(path, self.checkpoint())

    @classmethod
    def restore(
        cls, data: dict, job: Job, optimizer: BaseOptimizer
    ) -> "TuningSession":
        """Rebuild a session from a checkpoint plus its (reconstructed) job/optimizer.

        The caller supplies ``job`` and ``optimizer`` because both are
        deterministic to reconstruct; the checkpoint carries only progress.
        """
        if data.get("version") != _CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version {data.get('version')!r}")
        if data["job_name"] != job.name:
            raise ValueError(
                f"checkpoint is for job {data['job_name']!r}, got {job.name!r}"
            )
        if data["optimizer_name"] != optimizer.name:
            raise ValueError(
                f"checkpoint is for optimizer {data['optimizer_name']!r}, "
                f"got {optimizer.name!r}"
            )
        from repro.experiments.persistence import observation_from_dict

        options = dict(data["options"])
        if options.get("initial_configs") is not None:
            options["initial_configs"] = [
                Configuration.from_dict(c) for c in options["initial_configs"]
            ]
        session = cls(
            data["session_id"],
            job,
            optimizer,
            tenant=data.get("tenant"),
            priority=data.get("priority", 0),
            deadline_s=data.get("deadline_s"),
            created_at=data.get("created_at"),
            **options,
        )
        session._cancelled = data["status"] == SessionStatus.CANCELLED.value
        if data.get("spec") is not None:
            # Keep the session service-checkpointable after an individual
            # save/load round trip (save_registry requires the spec).
            from repro.service.api import JobSpec

            session.spec = JobSpec.from_dict(data["spec"])
        saved = data["state"]
        if saved is None:
            return session

        observations = [observation_from_dict(o) for o in saved["observations"]]
        observed = set(o.config for o in observations)
        # Rebuild the encoded grid tensors exactly as a fresh start() would,
        # so the restored state's row indices line up with the job's
        # canonical configuration order.
        grid = EncodedSpace.for_job(job)
        untested_rows = np.array(
            [i for i, c in enumerate(job.configurations) if c not in observed],
            dtype=np.intp,
        )
        optimizer_state = OptimizerState(
            space=job.space,
            budget_remaining=saved["budget_remaining"],
            observations=list(observations),
            current_config=observations[-1].config if observations else None,
            grid=grid,
            untested_rows=untested_rows,
        )
        rng = np.random.default_rng()
        rng.bit_generator.state = saved["rng_state"]
        # Rebuild the optimizer's derived caches, then replay the recording
        # hook so side data accumulated per observation (e.g. constraint
        # metrics) is restored as well.
        optimizer._prepare(job, optimizer_state, saved["tmax"], rng)
        for observation in observations:
            optimizer._record_observation(job, optimizer_state, observation)
        session.state = SessionState(
            job=job,
            tmax=saved["tmax"],
            budget=saved["budget"],
            n_bootstrap=saved["n_bootstrap"],
            rng=rng,
            optimizer_state=optimizer_state,
            bootstrap_queue=deque(
                Configuration.from_dict(c) for c in saved["bootstrap_queue"]
            ),
            decision_seconds=list(saved["decision_seconds"]),
            finished=saved["finished"],
            finish_reason=saved["finish_reason"],
        )
        # Fresh starts wire the state's timings to the session accumulator in
        # BaseOptimizer.start(); mirror that for restored states.
        optimizer_state.timings = session.state.phase_timings
        return session

    @classmethod
    def load(cls, path: str | Path, job: Job, optimizer: BaseOptimizer) -> "TuningSession":
        """Load a session previously written by :meth:`save`."""
        with Path(path).open("r", encoding="utf-8") as handle:
            return cls.restore(json.load(handle), job, optimizer)
