"""The tuning service: N concurrent sessions over one worker pool.

:class:`TuningService` multiplexes many :class:`~repro.service.session.TuningSession`
objects.  Each session is strictly serial internally (ask → run → tell — every
decision conditions on all previous observations), so the service extracts
parallelism *across* sessions: while one session's profiling run executes on
the worker pool, the scheduler keeps advancing other sessions' decision-making.
The one sanctioned intra-session exception is the bootstrap sample, which is
declared in full at session start and therefore embarrassingly parallel (see
``bootstrap_parallel`` below).

Operating modes
---------------

*Batch* — :meth:`TuningService.drain` blocks until every submitted session is
terminal.  With ``n_workers <= 1`` and the default thread executor everything
runs inline in pure scheduling order, with no pool and no threads; execution
is then fully deterministic and a session produces exactly the result a bare
``optimizer.optimize()`` call would.

*Daemon* — :meth:`TuningService.serve` starts a background scheduler thread
and returns immediately.  :meth:`submit` keeps working while the daemon runs
(a condition variable wakes it on every submission), sessions can be
cancelled mid-flight with :meth:`cancel`, and :meth:`shutdown` stops the
daemon either gracefully (``drain=True``: finish all submitted work first) or
promptly (``drain=False``: let in-flight profiling runs finish and be told —
so every session is left at a checkpointable step boundary — but start
nothing new).

In either mode, per-session results are **bit-identical** for any worker
count, executor kind, scheduling policy and ``bootstrap_parallel`` setting:
each session still observes its own serial history, so parallelism changes
only wall-clock time and interleaving.

Executors
---------

``executor="thread"`` (default) runs profiling jobs on a
:class:`~concurrent.futures.ThreadPoolExecutor` — right for the simulated /
IO-bound jobs of this reproduction, whose ``run()`` is a table lookup.
``executor="process"`` runs them on a
:class:`~concurrent.futures.ProcessPoolExecutor` for jobs whose ``run()`` is
CPU-heavy python: the job and configuration are pickled to the worker, the
:class:`~repro.workloads.base.JobOutcome` is marshalled back and told on the
scheduler thread.  Process-pool jobs must therefore be picklable (the
tabulated jobs are; wrappers holding lambdas or live cluster handles are
not), and they must not rely on shared in-process state — the worker mutates
a *copy* of the job.  The pool defaults to the ``spawn`` start method: the
daemon thread makes forking from a multi-threaded parent unsafe.

Jobs are expected to be safe to run concurrently with each other; the
tabulated replay jobs of this reproduction are pure lookups and qualify.
Stateful wrappers (e.g. ``SetupCostAwareJob``, whose provisioner tracks the
deployed cluster) should be multiplexed only with ``n_workers=1`` and one
wrapper instance per session.

Locking discipline
------------------

One reentrant lock (wrapped by a condition variable) guards *all* mutable
service state: the session registry, per-session runtime records, the
in-flight counter and the daemon control flags.  Every public method acquires
it, and the daemon thread holds it for each scheduling iteration — including
``ask``/``tell`` calls, which mutate session state — releasing it only while
blocked in ``Condition.wait`` for a completion or a submission.  Status
transitions are therefore atomic as seen by :meth:`poll`/:meth:`statuses`:
a snapshot can never observe a session mid-mutation.  Worker threads never
touch session state; completion callbacks only append to a queue under the
lock and notify.
"""

from __future__ import annotations

import copy
import itertools
import json
import math
import multiprocessing
import threading
import time
from collections import deque
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Any, Mapping

from repro.core.optimizer import BaseOptimizer, OptimizationResult
from repro.core.space import Configuration
from repro.ioutil import atomic_write_json
from repro.observability.metrics import MetricsRegistry
from repro.service.api import (
    PROTOCOL_VERSION,
    BadRequestError,
    ConflictError,
    JobSpec,
    QuotaExceededError,
    resolve_spec,
)
from repro.service.journal import TellJournal, read_journal
from repro.service.scheduler import SchedulingPolicy, make_policy
from repro.service.session import SessionStatus, TuningSession
from repro.workloads import load_job
from repro.workloads.base import Job, JobOutcome

__all__ = ["TuningService"]

_EXECUTOR_KINDS = ("thread", "process")

_REGISTRY_CHECKPOINT_VERSION = 1


def _run_job(job: Job, config: Configuration) -> JobOutcome:
    """Run ``job`` on ``config``; module-level so process pools can pickle it."""
    return job.run(config)


#: Per-worker-process cache of registry job tables, keyed by fully-qualified
#: name.  Populated by the pool initializer (for the names known when the
#: pool starts) and lazily by :func:`_run_registry_job` (for sessions
#: submitted to a live daemon afterwards).  Tables are deterministic to
#: rebuild from their name, so a cached copy is identical to the submitter's.
_WORKER_JOBS: dict[str, Job] = {}


def _warm_worker(job_names: tuple[str, ...]) -> None:
    """Process-pool initializer: build each known registry job once per worker."""
    for name in job_names:
        _WORKER_JOBS.setdefault(name, load_job(name))


def _run_registry_job(name: str, config: Configuration) -> JobOutcome:
    """Run a registry job by name, shipping only the name to the worker.

    This replaces pickling the whole lookup table into every profiling run:
    the worker rebuilds (or reuses) the table from its per-process cache.
    """
    job = _WORKER_JOBS.get(name)
    if job is None:
        job = _WORKER_JOBS[name] = load_job(name)
    return job.run(config)


class _Dispatch:
    """One profiling run in flight on the pool."""

    __slots__ = ("record", "config", "batched", "future", "outcome", "error")

    def __init__(self, record: "_SessionRecord", config: Configuration, batched: bool) -> None:
        self.record = record
        self.config = config
        self.batched = batched
        self.future: Future | None = None
        self.outcome: JobOutcome | None = None
        self.error: BaseException | None = None


class _SessionRecord:
    """Service-side runtime bookkeeping for one registered session.

    ``batch`` holds the in-flight *bootstrap* dispatches in queue order
    (``bootstrap_parallel`` mode only); outcomes may complete out of order
    but are told strictly in order, so the observation trace stays identical
    to a serial run.  ``inflight`` is the single outstanding post-ask
    dispatch of the normal path.  ``job_ref`` is the job's registry name when
    the session was submitted by spec and the name resolves through the
    built-in workload registry — process-pool runs then ship the name instead
    of the pickled table.  ``clean_checkpoint`` is the session's snapshot at
    its most recent step boundary: while the daemon runs, a session with a
    profiling run in flight cannot be checkpointed directly, so the periodic
    background save falls back to this cached boundary (seeded at
    registration, refreshed after every tell).
    """

    __slots__ = ("session", "batch", "inflight", "job_ref", "clean_checkpoint")

    def __init__(self, session: TuningSession, job_ref: str | None = None) -> None:
        self.session = session
        self.batch: deque[_Dispatch] = deque()
        self.inflight: _Dispatch | None = None
        self.job_ref = job_ref
        self.clean_checkpoint: dict[str, Any] = session.checkpoint()


class TuningService:
    """Drive many tuning sessions to completion, in batch or daemon mode.

    Parameters
    ----------
    n_workers:
        Maximum number of profiling runs in flight.  ``1`` (the default)
        with the thread executor disables the pool entirely in
        :meth:`drain` and runs everything inline.
    policy:
        A :class:`~repro.service.scheduler.SchedulingPolicy` instance or the
        name of a built-in one (``"fifo"``, ``"round-robin"``,
        ``"cost-aware"``).
    copy_optimizers:
        When true (the default) :meth:`submit` deep-copies the optimizer so
        every session owns its instance; per-run mutable state (price caches,
        constraint metrics) must not be shared across concurrent sessions.
    executor:
        ``"thread"`` (default) or ``"process"`` — what kind of pool runs the
        profiling jobs.  See the module docstring for the picklability
        contract of process pools.
    bootstrap_parallel:
        When true, a session's pre-declared bootstrap queue is dispatched to
        the pool in parallel (outcomes are told back in queue order, so
        results are unchanged); when false (default) every session has at
        most one run in flight.
    mp_context:
        Optional :mod:`multiprocessing` context for the process pool;
        defaults to the ``spawn`` context, which is safe to start from the
        daemon thread.
    tenant_quota:
        Maximum number of *active* (non-terminal) sessions any one tenant
        may hold at a time; further submissions raise
        :class:`~repro.service.api.QuotaExceededError` (HTTP 429) until
        sessions finish or are cancelled.  ``None`` (default) disables
        quotas.  Sessions submitted without a tenant share the anonymous
        (``None``) tenant's budget.
    quota_retry_after_s:
        Back-off hint stamped on quota rejections
        (``QuotaExceededError.retry_after_s``); gateways emit it as an HTTP
        ``Retry-After`` header so throttled clients know when to try again.
    autosave_path / autosave_interval_s:
        When ``autosave_path`` is set, :meth:`serve` starts a background
        thread that calls :meth:`save_registry` every
        ``autosave_interval_s`` seconds (and once more on shutdown), so a
        crashed daemon loses at most one interval of progress.  The write
        is atomic and durable (write, fsync, then rename) and each session
        is captured at its most recent step boundary.  With a journal (see
        below) each autosave additionally *compacts*: the snapshot covers
        the journal's prefix, which is rotated away atomically.
    journal_path / journal_sync / journal_sync_interval_s:
        When ``journal_path`` is set, every spec-submitted session's durable
        transition — submission, each tell, cancellation, finish — is
        appended to a write-ahead JSONL journal
        (:class:`~repro.service.journal.TellJournal`) in the same critical
        section as the state change, so a crashed daemon loses *nothing*
        that reached the journal: :meth:`replay_journal` restores the
        suffix not covered by the latest snapshot bit-identically.
        ``journal_sync`` picks the fsync policy (``"none"`` / ``"interval"``
        / ``"always"``; see the journal module docs for the durability
        tradeoffs), ``journal_sync_interval_s`` the cadence of the
        ``"interval"`` mode.  Sessions submitted as live objects (plain
        :meth:`submit`) are not journalled — as with autosave, only a spec
        makes a session reconstructable from JSON.
    """

    def __init__(
        self,
        *,
        n_workers: int = 1,
        policy: SchedulingPolicy | str = "fifo",
        copy_optimizers: bool = True,
        executor: str = "thread",
        bootstrap_parallel: bool = False,
        mp_context: Any | None = None,
        tenant_quota: int | None = None,
        quota_retry_after_s: float = 1.0,
        autosave_path: str | Path | None = None,
        autosave_interval_s: float = 30.0,
        journal_path: str | Path | None = None,
        journal_sync: str = "interval",
        journal_sync_interval_s: float = 1.0,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if executor not in _EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; available: {_EXECUTOR_KINDS}"
            )
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError("tenant_quota must be at least 1 (or None)")
        if not math.isfinite(quota_retry_after_s) or quota_retry_after_s <= 0:
            raise ValueError("quota_retry_after_s must be a positive, finite number")
        if autosave_interval_s <= 0:
            raise ValueError("autosave_interval_s must be positive")
        self.n_workers = n_workers
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.copy_optimizers = copy_optimizers
        self.executor_kind = executor
        self.bootstrap_parallel = bootstrap_parallel
        self.mp_context = mp_context
        self.tenant_quota = tenant_quota
        self.quota_retry_after_s = quota_retry_after_s
        self.autosave_path = Path(autosave_path) if autosave_path is not None else None
        self.autosave_interval_s = autosave_interval_s

        # One lock for everything mutable (see "Locking discipline" above).
        self._lock = threading.RLock()
        self._wakeup = threading.Condition(self._lock)
        self._records: dict[str, _SessionRecord] = {}
        self._ids = itertools.count()

        # Daemon state, guarded by the lock.
        self._thread: threading.Thread | None = None
        self._executor: Executor | None = None
        self._serving = False
        self._stop = False
        self._drain_on_stop = True
        self._n_inflight = 0
        self._completed: deque[_Dispatch] = deque()
        self._errors: dict[str, BaseException] = {}
        self._serve_error: BaseException | None = None

        # Periodic background save (started by serve() when autosave_path is
        # set); failures are recorded, never allowed to kill the daemon.
        self._autosave_thread: threading.Thread | None = None
        self._autosave_stop = threading.Event()
        self._autosave_error: BaseException | None = None
        self._last_autosave_at: float | None = None

        # Service-wide telemetry.  The registry is shared with every session
        # (bind_metrics at registration) and with the HTTP gateway; all of it
        # is exported as one plain-dict snapshot by metrics_snapshot().
        self.metrics = MetricsRegistry()
        self._m_submitted = self.metrics.counter(
            "sessions_submitted_total", "Sessions registered", labels=("tenant",)
        )
        self._m_picks = self.metrics.counter(
            "scheduler_picks_total",
            "Scheduling decisions, by policy and picked tenant (fairness)",
            labels=("policy", "tenant"),
        )
        self._m_inflight = self.metrics.gauge(
            "executor_inflight",
            "Profiling runs currently on the pool",
            labels=("executor",),
        )
        self._m_workers = self.metrics.gauge(
            "executor_workers", "Configured worker-pool size", labels=("executor",)
        )
        self._m_runs = self.metrics.counter(
            "executor_runs_total",
            "Profiling runs handed to the pool",
            labels=("executor",),
        )
        self._m_autosave = self.metrics.histogram(
            "autosave_seconds", "Duration of periodic registry checkpoints"
        )
        self._m_autosave_failures = self.metrics.counter(
            "autosave_failures_total", "Periodic registry checkpoints that failed"
        )
        self._m_replayed = self.metrics.counter(
            "journal_replayed_total",
            "Journal records processed by replay_journal",
            labels=("type", "outcome"),
        )
        self._m_workers.set(self.n_workers, executor=self.executor_kind)

        # Write-ahead journal (opened eagerly: a torn tail from a previous
        # crash is truncated before anything else touches the file).  Appends
        # go through _journal_append_locked, which honours _journal_suspended
        # so replaying a journal never re-journals its own records.
        self.journal: TellJournal | None = None
        self._journal_suspended = False
        if journal_path is not None:
            self.journal = TellJournal(
                journal_path,
                sync=journal_sync,
                sync_interval_s=journal_sync_interval_s,
                metrics=self.metrics,
            )

    # -- submission and inspection ------------------------------------------
    def submit(
        self,
        job: Job,
        optimizer: BaseOptimizer,
        *,
        session_id: str | None = None,
        tenant: str | None = None,
        priority: int = 0,
        deadline_s: float | None = None,
        **options: Any,
    ) -> str:
        """Register a new tuning session and return its id.

        ``options`` are forwarded to
        :meth:`~repro.core.optimizer.BaseOptimizer.start` (``tmax``,
        ``budget``, ``budget_multiplier``, ``n_bootstrap``,
        ``initial_configs``, ``seed``); ``tenant`` / ``priority`` /
        ``deadline_s`` are multi-tenant metadata (quota accounting and the
        priority/deadline scheduling policies).  Works both before
        :meth:`drain` and while a daemon started by :meth:`serve` is running
        — the daemon picks the new session up immediately.
        """
        # The deepcopy touches no shared state — keep it off the lock so
        # concurrent submitters never stall the daemon's scheduling.
        if self.copy_optimizers:
            optimizer = copy.deepcopy(optimizer)
        with self._wakeup:
            if session_id is None:
                session_id = self._fresh_session_id_locked()
            if session_id in self._records:
                raise ValueError(f"duplicate session id {session_id!r}")
            self._check_quota_locked(tenant)
            session = TuningSession(
                session_id,
                job,
                optimizer,
                tenant=tenant,
                priority=priority,
                deadline_s=deadline_s,
                **options,
            )
            session.bind_metrics(self.metrics)
            self._records[session_id] = _SessionRecord(session)
            self._m_submitted.inc(tenant=tenant or "")
            self._wakeup.notify_all()
            return session_id

    def _check_quota_locked(self, tenant: str | None) -> None:
        """Reject a submission that would exceed the tenant's active-session quota."""
        if self.tenant_quota is None:
            return
        active = sum(
            1
            for record in self._records.values()
            if record.session.tenant == tenant
            and not record.session.status.terminal
        )
        if active >= self.tenant_quota:
            raise QuotaExceededError(
                f"tenant {tenant!r} already has {active} active session(s) "
                f"(quota {self.tenant_quota}); wait for one to finish or "
                "cancel one",
                retry_after_s=self.quota_retry_after_s,
            )

    def _fresh_session_id_locked(self) -> str:
        # Skip ids already taken by caller-chosen or restored sessions: a
        # registry restored from a checkpoint does not advance the counter.
        while True:
            session_id = f"session-{next(self._ids)}"
            if session_id not in self._records:
                return session_id

    def submit_spec(
        self,
        spec: JobSpec,
        *,
        session_id: str | None = None,
        extra_jobs: Mapping[str, Job] | None = None,
        extra_optimizers: Mapping[str, Any] | None = None,
    ) -> str:
        """Register a new session from a declarative :class:`~repro.service.api.JobSpec`.

        This is the protocol entry point used by every
        :class:`~repro.service.client.TuningClient`: the job and optimizer
        are *resolved by name* through the registries (``extra_jobs`` /
        ``extra_optimizers`` are caller-local overlays for live objects), so
        the spec can have crossed a process or network boundary.
        Spec-submitted sessions are additionally:

        * eligible for the process executor's per-worker job cache (the
          worker rebuilds the table from its registry name instead of
          unpickling it per run), and
        * coverable by the service-level registry checkpoint
          (:meth:`save_registry`), because the spec alone reconstructs them.

        Raises :class:`~repro.service.api.UnknownJobError` /
        :class:`~repro.service.api.UnknownOptimizerError` /
        :class:`~repro.service.api.BadRequestError` on resolution failures,
        :class:`~repro.service.api.ConflictError` on a duplicate id and
        :class:`~repro.service.api.QuotaExceededError` when the spec's
        tenant is at its active-session quota.
        """
        if session_id is not None and not session_id:
            # An empty id would be unroutable over the HTTP gateway.
            raise BadRequestError("session_id must be a non-empty string")
        # Resolution builds the job table and optimizer — potentially
        # expensive, touches no service state — so keep it off the lock.
        job, optimizer, options, cacheable = resolve_spec(
            spec, extra_jobs=extra_jobs, extra_optimizers=extra_optimizers
        )
        with self._wakeup:
            if session_id is None:
                session_id = self._fresh_session_id_locked()
            if session_id in self._records:
                raise ConflictError(f"duplicate session id {session_id!r}")
            self._check_quota_locked(spec.tenant)
            session = TuningSession(
                session_id,
                job,
                optimizer,
                tenant=spec.tenant,
                priority=spec.priority,
                deadline_s=spec.deadline_s,
                **options,
            )
            session.spec = spec
            session.bind_metrics(self.metrics)
            self._records[session_id] = _SessionRecord(
                session, job_ref=job.name if cacheable else None
            )
            self._m_submitted.inc(tenant=spec.tenant or "")
            # Journalled inside the same critical section as the
            # registration: the submit response implies the session is
            # (at least) in the OS page cache.
            self._journal_append_locked(
                {"type": "submit", "session_id": session_id, "spec": spec.to_dict()}
            )
            self._wakeup.notify_all()
            return session_id

    def add_session(self, session: TuningSession) -> str:
        """Register an existing session object (e.g. one restored from a checkpoint)."""
        with self._wakeup:
            if session.session_id in self._records:
                raise ValueError(f"duplicate session id {session.session_id!r}")
            session.bind_metrics(self.metrics)
            self._records[session.session_id] = _SessionRecord(session)
            self._m_submitted.inc(tenant=session.tenant or "")
            self._wakeup.notify_all()
            return session.session_id

    def get(self, session_id: str) -> TuningSession:
        """The session object behind ``session_id``."""
        with self._lock:
            try:
                return self._records[session_id].session
            except KeyError:
                raise KeyError(f"unknown session {session_id!r}") from None

    def poll(self, session_id: str) -> dict[str, Any]:
        """A JSON-safe progress snapshot of one session (atomic vs. the daemon)."""
        with self._lock:
            return self.get(session_id).metrics()

    def result(self, session_id: str) -> OptimizationResult:
        """The final result of a terminal session."""
        with self._lock:
            return self.get(session_id).result()

    def results(self) -> dict[str, OptimizationResult]:
        """Results of every *completed* session (cancelled ones excluded)."""
        with self._lock:
            return {
                sid: record.session.result()
                for sid, record in self._records.items()
                if record.session.status
                in (SessionStatus.DONE, SessionStatus.EXHAUSTED)
            }

    @property
    def session_ids(self) -> list[str]:
        """All registered session ids, in submission order."""
        with self._lock:
            return list(self._records)

    def statuses(self) -> dict[str, SessionStatus]:
        """Status of every registered session (one atomic snapshot)."""
        with self._lock:
            return {
                sid: record.session.status
                for sid, record in self._records.items()
            }

    @property
    def serving(self) -> bool:
        """Whether a daemon thread started by :meth:`serve` is running."""
        with self._lock:
            return self._serving

    @property
    def autosave_error(self) -> BaseException | None:
        """The most recent periodic-save failure, or ``None`` when healthy.

        A failing autosave degrades durability, not availability, so it
        never kills the daemon — but it must not be silent either: the
        health snapshot (:meth:`LocalClient.health`, ``/v1/healthz``)
        surfaces this, and the next successful save clears it.
        """
        return self._autosave_error

    @property
    def last_autosave_at(self) -> float | None:
        """Wall-clock time (``time.time()``) of the last *successful* save.

        Together with :attr:`autosave_error` this lets operators distinguish
        "failing now" (error set, stale timestamp) from "failed once,
        recovered" (error cleared, fresh timestamp).
        """
        return self._last_autosave_at

    def metrics_snapshot(self, tenant: str | None = None) -> dict[str, Any]:
        """The ``/v1/metrics`` payload: registry snapshot plus derived summaries.

        With ``tenant`` set, the raw series are filtered to that tenant's
        label set (the scoped view served to authenticated gateway clients)
        and the derived ``tenants`` summaries cover only that tenant.
        """
        from repro.observability.report import tenant_summaries

        snapshot = self.metrics.snapshot(tenant=tenant)
        snapshot["tenants"] = tenant_summaries(snapshot)
        if tenant is None:
            snapshot.update(
                {
                    "protocol_version": PROTOCOL_VERSION,
                    "serving": self.serving,
                    "policy": self.policy.name,
                    "n_workers": self.n_workers,
                    "executor": self.executor_kind,
                }
            )
        return snapshot

    def cancel(self, session_id: str) -> bool:
        """Cancel a session; returns whether the call changed anything.

        A cancelled session goes terminal (``CANCELLED``), produces no
        result, and is skipped by the scheduler.  In-flight profiling runs
        are revoked where the pool still allows it; an outcome that arrives
        anyway is discarded without charging the session's budget.
        """
        with self._wakeup:
            record = self._records.get(session_id)
            if record is None:
                raise KeyError(f"unknown session {session_id!r}")
            changed = record.session.cancel()
            if changed:
                for dispatch in [record.inflight, *record.batch]:
                    if dispatch is not None and dispatch.future is not None:
                        dispatch.future.cancel()
                self._journal_transition_locked(record, "cancel")
                self._wakeup.notify_all()
            return changed

    def wait_for(self, session_id: str, timeout: float | None = None) -> dict[str, Any]:
        """Block until a session is terminal (or ``timeout`` elapses); return its metrics.

        The long-poll primitive behind ``GET /v1/sessions/{id}?wait_s=N``:
        the caller parks on the service's condition variable instead of
        busy-polling, and is woken by the daemon whenever session state
        changes.  Returns the same snapshot as :meth:`poll` — the caller
        checks ``status`` to distinguish completion from timeout.  When no
        daemon is serving, returns immediately (nothing will advance the
        session), so callers cannot deadlock against a batch-mode service.
        """
        if timeout is not None and not math.isfinite(timeout):
            # NaN compares False to everything: the deadline below would
            # never expire and the wait would spin. Infinity is just
            # timeout=None spelled confusingly; reject both loudly.
            raise ValueError(f"timeout must be finite or None, got {timeout!r}")
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._wakeup:
            while True:
                record = self._records.get(session_id)
                if record is None:
                    raise KeyError(f"unknown session {session_id!r}")
                if record.session.status.terminal or not self._serving:
                    return record.session.metrics()
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return record.session.metrics()
                self._wakeup.wait(remaining)

    def watch_state(
        self,
        callback: Any,
        stop: threading.Event,
        *,
        tick: float = 1.0,
    ) -> None:
        """Invoke ``callback`` after every service state change until ``stop`` is set.

        The bridge primitive behind the asyncio gateway's long-polls: a
        dedicated watcher thread calls this once, and every notification on
        the service condition (submit, tell, cancel, completion, shutdown)
        plus a periodic ``tick`` heartbeat invokes ``callback``.  Because
        the loop re-acquires the condition's lock *between* waits and never
        releases it around the callback, no notification can slip through
        unobserved — the lost-wakeup class of bug is structurally excluded.

        The callback runs **while the service lock is held**: it must be
        quick, must not block, and must never call back into the service.
        Bounce real work to another thread or event loop instead
        (``loop.call_soon_threadsafe`` is the intended shape).  Use
        :meth:`notify_watchers` to pop the watcher out of its current wait
        promptly after setting ``stop``.
        """
        if not math.isfinite(tick) or tick <= 0:
            raise ValueError(f"tick must be a positive, finite number, got {tick!r}")
        with self._wakeup:
            while not stop.is_set():
                self._wakeup.wait(tick)
                callback()

    def notify_watchers(self) -> None:
        """Wake everything parked on the service condition (watchers, long-polls).

        State changes notify automatically; this is for *external* reasons
        to re-check — e.g. a gateway shutting down its watcher thread.
        """
        with self._wakeup:
            self._wakeup.notify_all()

    # -- service-level checkpoint --------------------------------------------
    def save_registry(self, path: str | Path, *, skip_unspecced: bool = False) -> Path:
        """Checkpoint the whole service — every session plus the scheduler
        cursor — into one JSON file.

        This replaces one-file-per-session checkpointing as the service
        default.  Only spec-submitted sessions qualify (the spec is what
        makes a session reconstructable from JSON alone); sessions submitted
        as live objects raise — or are silently left out with
        ``skip_unspecced=True``, which is what the periodic background save
        uses so one live session cannot disable autosave for everyone else.

        Safe to call while the daemon is serving: each session is captured
        at its most recent *step boundary* (sessions with a profiling run in
        flight contribute their cached boundary snapshot, refreshed after
        every tell), so a restore replays every session bit-identically from
        that boundary.  The write is atomic and durable — a unique scratch
        file (concurrent savers never interleave) is written, fsynced and
        renamed over ``path``, so a crash at any point leaves either the
        previous good checkpoint or the complete new one.
        """
        with self._lock:
            payload = self._registry_payload_locked(skip_unspecced)
        return atomic_write_json(path, payload)

    def _registry_payload_locked(self, skip_unspecced: bool) -> dict[str, Any]:
        unspecced = [
            sid for sid, record in self._records.items()
            if record.session.spec is None
        ]
        if unspecced and not skip_unspecced:
            raise ValueError(
                f"sessions without a JobSpec cannot be service-checkpointed: "
                f"{unspecced}; submit them via submit_spec()/a TuningClient, "
                "or checkpoint them individually with TuningSession.save()"
            )
        return {
            "version": _REGISTRY_CHECKPOINT_VERSION,
            "protocol_version": PROTOCOL_VERSION,
            "policy": {
                "name": self.policy.name,
                "state": self.policy.state_dict(),
            },
            "sessions": [
                self._boundary_checkpoint_locked(record)
                for sid, record in self._records.items()
                if sid not in unspecced
            ],
        }

    def compact_journal(
        self, path: str | Path, *, skip_unspecced: bool = True
    ) -> Path:
        """Snapshot the registry to ``path`` and rotate the journal behind it.

        The compaction step of the WAL design: the snapshot payload and the
        journal cut-off offset are captured in *one* critical section (no
        tell can slip between them), the snapshot is written durably, and
        only then is the journal's covered prefix rotated away.  Every crash
        window is safe — before the rename the old snapshot + full journal
        replay; after it the new snapshot plus a journal whose overlapping
        prefix (if the rotation itself was lost) is skipped by sequence
        number on replay.  Without a journal this degrades to plain
        :meth:`save_registry`.
        """
        if self.journal is None:
            return self.save_registry(path, skip_unspecced=skip_unspecced)
        with self._lock:
            payload = self._registry_payload_locked(skip_unspecced)
            cutoff = self.journal.tell_offset()
        result = atomic_write_json(path, payload)
        self.journal.rotate(cutoff)
        return result

    def _boundary_checkpoint_locked(self, record: _SessionRecord) -> dict[str, Any]:
        """The session's snapshot at its most recent step boundary.

        Sessions with no run in flight are checkpointed fresh (and the cache
        refreshed); a session mid-run contributes its cached boundary, which
        the daemon refreshes after every tell — so the staleness of any
        entry is bounded by one profiling run.
        """
        session = record.session
        if session.state is None or session.state.pending is None:
            record.clean_checkpoint = session.checkpoint()
        return record.clean_checkpoint

    def restore_registry(
        self, path: str | Path, *, extra_jobs: Mapping[str, Job] | None = None
    ) -> list[str]:
        """Re-register every session of a :meth:`save_registry` checkpoint.

        Jobs and optimizers are rebuilt from each session's embedded spec;
        the scheduler cursor is restored when the checkpoint's policy matches
        this service's (otherwise the fresh policy starts clean).  Returns
        the restored session ids, in their original submission order.
        """
        with Path(path).open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != _REGISTRY_CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported registry checkpoint version {payload.get('version')!r}"
            )
        restored: list[tuple[TuningSession, str | None]] = []
        for entry in payload["sessions"]:
            if entry.get("spec") is None:
                raise ValueError(
                    f"registry checkpoint entry {entry.get('session_id')!r} has no spec"
                )
            spec = JobSpec.from_dict(entry["spec"])
            job, optimizer, _, cacheable = resolve_spec(spec, extra_jobs=extra_jobs)
            # restore() re-attaches the spec from the checkpoint itself.
            session = TuningSession.restore(entry, job, optimizer)
            restored.append((session, job.name if cacheable else None))
        with self._wakeup:
            for session, _ in restored:
                if session.session_id in self._records:
                    raise ValueError(f"duplicate session id {session.session_id!r}")
            for session, job_ref in restored:
                # Restored sessions are not re-counted as submissions; they
                # only re-join the live instruments.
                session.bind_metrics(self.metrics)
                self._records[session.session_id] = _SessionRecord(
                    session, job_ref=job_ref
                )
            saved_policy = payload.get("policy", {})
            if saved_policy.get("name") == self.policy.name:
                self.policy.load_state_dict(saved_policy.get("state", {}))
            self._wakeup.notify_all()
        return [session.session_id for session, _ in restored]

    # -- write-ahead journal --------------------------------------------------
    def _journal_append_locked(self, record: dict[str, Any]) -> None:
        """Append one record to the journal (no-op without one, or suspended)."""
        if self.journal is not None and not self._journal_suspended:
            self.journal.append(record)

    def _journal_tell_locked(
        self, record: _SessionRecord, config: Configuration, outcome: JobOutcome
    ) -> None:
        """Journal one completed tell, then the terminal transition if any.

        ``seq`` is the session's observation count *after* the tell; replay
        uses it to skip records already covered by a snapshot.  Only
        spec-submitted sessions are journalled (a session without a spec is
        not reconstructable from JSON, so its records would be dead weight).
        """
        session = record.session
        if self.journal is None or session.spec is None:
            return
        self._journal_append_locked(
            {
                "type": "tell",
                "session_id": session.session_id,
                "seq": len(session.state.optimizer_state.observations),
                "config": config.as_dict(),
                "outcome": {
                    "runtime_seconds": outcome.runtime_seconds,
                    "cost": outcome.cost,
                    "timed_out": outcome.timed_out,
                },
            }
        )
        if session.status.terminal:
            self._journal_transition_locked(record, "finish")

    def _journal_transition_locked(self, record: _SessionRecord, kind: str) -> None:
        """Journal a cancel/finish transition (informational for finish —
        replaying the tells reproduces it — but a cancel must replay to keep
        the restored registry identical to the crashed one)."""
        session = record.session
        if session.spec is None:
            return
        self._journal_append_locked(
            {
                "type": kind,
                "session_id": session.session_id,
                "status": session.status.value,
            }
        )

    def replay_journal(
        self, path: str | Path | None = None, *, extra_jobs: Mapping[str, Job] | None = None
    ) -> dict[str, int]:
        """Replay a write-ahead journal on top of the current registry.

        The restore path is *snapshot + journal-suffix replay*: call
        :meth:`restore_registry` with the latest snapshot first (if one
        exists), then this.  Submissions recorded after the snapshot are
        re-registered from their journalled spec; each journalled tell is
        re-applied by asking the session (deterministic given its restored
        state — the asked configuration is asserted against the journal) and
        telling the recorded outcome back, so the restored trace is
        bit-identical to the crashed daemon's.  Records already covered by
        the snapshot (their ``seq`` at or below the session's observation
        count, or an already-registered submission) are skipped — replay is
        idempotent, which is what makes every compaction crash window safe.
        A torn trailing record (the append the crash interrupted) is dropped
        by the journal reader, never an error.

        Returns ``{"applied": ..., "skipped": ...}``.  Raises ``ValueError``
        on genuine divergence — a sequence gap, an asked configuration that
        does not match the journal, or a tell for a session the journal
        never submitted and no snapshot covers.
        """
        if path is None:
            if self.journal is None:
                raise ValueError("no journal configured and no path given")
            path = self.journal.path
        records = read_journal(path)
        counts = {"applied": 0, "skipped": 0}

        def count(kind: str, outcome: str) -> None:
            counts[outcome] += 1
            self._m_replayed.inc(type=kind, outcome=outcome)

        with self._wakeup:
            if self._serving:
                raise RuntimeError("replay_journal() is unavailable while serving")
            self._journal_suspended = True
            try:
                for entry in records:
                    kind = entry.get("type")
                    if kind == "submit":
                        if entry["session_id"] in self._records:
                            count(kind, "skipped")
                            continue
                        self._replay_submit_locked(entry, extra_jobs)
                        count(kind, "applied")
                    elif kind == "tell":
                        outcome = self._replay_tell_locked(entry)
                        count(kind, outcome)
                    elif kind == "cancel":
                        record = self._require_session_locked(entry)
                        if record.session.cancel():
                            count(kind, "applied")
                        else:
                            count(kind, "skipped")
                    elif kind == "finish":
                        outcome = self._replay_finish_locked(entry)
                        count(kind, outcome)
                    else:
                        raise ValueError(f"unknown journal record type {kind!r}")
            finally:
                self._journal_suspended = False
            self._wakeup.notify_all()
        return counts

    def _require_session_locked(self, entry: dict[str, Any]) -> _SessionRecord:
        record = self._records.get(entry["session_id"])
        if record is None:
            raise ValueError(
                f"journal names session {entry['session_id']!r} but neither the "
                "snapshot nor an earlier journal record registered it — the "
                "snapshot and journal are from different service lifetimes"
            )
        return record

    def _replay_submit_locked(
        self, entry: dict[str, Any], extra_jobs: Mapping[str, Job] | None
    ) -> None:
        # Mirrors submit_spec minus the quota check: the submission was
        # admitted when it was journalled, and a restore must reproduce the
        # crashed registry even under a since-tightened quota.
        spec = JobSpec.from_dict(entry["spec"])
        job, optimizer, options, cacheable = resolve_spec(spec, extra_jobs=extra_jobs)
        session = TuningSession(
            entry["session_id"],
            job,
            optimizer,
            tenant=spec.tenant,
            priority=spec.priority,
            deadline_s=spec.deadline_s,
            **options,
        )
        session.spec = spec
        session.bind_metrics(self.metrics)
        self._records[session.session_id] = _SessionRecord(
            session, job_ref=job.name if cacheable else None
        )

    def _replay_tell_locked(self, entry: dict[str, Any]) -> str:
        record = self._require_session_locked(entry)
        session = record.session
        have = (
            len(session.state.optimizer_state.observations)
            if session.state is not None
            else 0
        )
        seq = entry["seq"]
        if seq <= have:
            return "skipped"  # covered by the snapshot (or a replayed prefix)
        if seq > have + 1 or session.status.terminal:
            raise ValueError(
                f"journal replay diverged for session {session.session_id!r}: "
                f"record seq {seq} cannot follow {have} observation(s) "
                f"(status {session.status.value})"
            )
        config = session.ask()
        if config is None or config.as_dict() != entry["config"]:
            asked = None if config is None else config.as_dict()
            raise ValueError(
                f"journal replay diverged for session {session.session_id!r} at "
                f"seq {seq}: re-asked configuration {asked!r} does not match the "
                f"journalled {entry['config']!r}"
            )
        session.tell(JobOutcome(**entry["outcome"]))
        self._refresh_clean_checkpoint_locked(record)
        return "applied"

    def _replay_finish_locked(self, entry: dict[str, Any]) -> str:
        # A session goes terminal when ``ask()`` detects budget exhaustion or
        # convergence and returns ``None`` — an event *after* the last tell,
        # so replaying the tells alone leaves the session RUNNING.  Re-ask the
        # restored session: deterministically it must decline again, which
        # flips it terminal exactly as in the crashed daemon.
        record = self._require_session_locked(entry)
        session = record.session
        if session.status.terminal:
            return "skipped"  # covered by the snapshot (or a replayed cancel)
        config = session.ask()
        if config is not None:
            raise ValueError(
                f"journal replay diverged for session {session.session_id!r}: "
                f"journal records a finish but the restored session asked "
                f"{config.as_dict()!r}"
            )
        if session.status.value != entry["status"]:
            raise ValueError(
                f"journal replay diverged for session {session.session_id!r}: "
                f"journal records terminal status {entry['status']!r} but the "
                f"restored session finished as {session.status.value!r}"
            )
        self._refresh_clean_checkpoint_locked(record)
        return "applied"

    # -- serial execution ----------------------------------------------------
    def _ready(self) -> list[TuningSession]:
        return [
            record.session
            for record in self._records.values()
            if not record.session.status.terminal
            and (
                record.session.state is None
                or record.session.state.pending is None
            )
        ]

    def step(self) -> bool:
        """Advance one scheduling decision inline (always serial).

        Returns ``False`` when every session is terminal.  Not available
        while a daemon is serving — the daemon owns the schedule then.
        """
        with self._lock:
            if self._serving:
                raise RuntimeError("step() is unavailable while serve() is running")
            ready = self._ready()
            if not ready:
                return False
            session = self.policy.select(ready)
            self._m_picks.inc(policy=self.policy.name, tenant=session.tenant or "")
            # Inline ask -> run -> tell (what session.step() does), opened up
            # so the journal hook sees the config/outcome pair.
            record = self._records[session.session_id]
            config = session.ask()
            if config is None:
                self._journal_transition_locked(record, "finish")
                return True
            outcome = session.job.run(config)
            session.tell(outcome)
            self._journal_tell_locked(record, config, outcome)
            self._refresh_clean_checkpoint_locked(record)
            return True

    def drain(self) -> dict[str, OptimizationResult]:
        """Run every submitted session to completion and return ``{session_id: result}``.

        With ``n_workers == 1``, the thread executor and no bootstrap
        batching this is a pure inline loop; any other combination runs the
        daemon machinery to completion (``serve()`` + ``shutdown(drain=True)``).
        """
        with self._lock:
            if self._serving:
                raise RuntimeError(
                    "drain() is unavailable while serve() is running; "
                    "use shutdown(drain=True)"
                )
            pooled = (
                self.n_workers > 1
                or self.executor_kind != "thread"
                or self.bootstrap_parallel
            )
        if not pooled:
            while self.step():
                pass
            return self.results()
        self.serve()
        return self.shutdown(drain=True)

    # -- daemon execution ----------------------------------------------------
    def serve(self) -> None:
        """Start the daemon: a background thread that schedules until shutdown.

        Returns immediately.  The daemon sleeps on a condition variable when
        idle, wakes on every :meth:`submit`/:meth:`cancel`/:meth:`shutdown`,
        and keeps up to ``n_workers`` profiling runs in flight on the
        configured executor.
        """
        with self._lock:
            if self._serving:
                raise RuntimeError("serve() called while already serving")
            self._stop = False
            self._drain_on_stop = True
            self._serve_error = None
            self._executor = self._make_executor()
            self._thread = threading.Thread(
                target=self._serve_loop, name="repro-tuning-service", daemon=True
            )
            self._serving = True
            self._thread.start()
            if self.autosave_path is not None:
                self._autosave_stop = threading.Event()
                self._autosave_thread = threading.Thread(
                    target=self._autosave_loop,
                    name="repro-tuning-autosave",
                    daemon=True,
                )
                self._autosave_thread.start()

    def shutdown(
        self, drain: bool = True, timeout: float | None = None
    ) -> dict[str, OptimizationResult]:
        """Stop the daemon and return the completed results so far.

        ``drain=True`` finishes every submitted session first; ``drain=False``
        stops dispatching immediately but still waits for (and tells) the
        outcomes already in flight, so every surviving session is left at a
        clean step boundary — checkpointable with
        :meth:`~repro.service.session.TuningSession.save`.  ``timeout`` bounds
        the join; on expiry a :class:`TimeoutError` is raised and the daemon
        keeps winding down in the background.
        """
        with self._wakeup:
            if self._thread is None:
                raise RuntimeError("shutdown() called but serve() was never started")
            self._stop = True
            self._drain_on_stop = drain
            thread = self._thread
            self._wakeup.notify_all()
        thread.join(timeout)
        if thread.is_alive():
            raise TimeoutError(f"daemon did not stop within {timeout} seconds")
        # Stop the autosaver after the daemon so its final save captures the
        # post-drain state; its loop writes once more on the way out.
        saver = self._autosave_thread
        if saver is not None:
            self._autosave_stop.set()
            saver.join()
        with self._lock:
            self._autosave_thread = None
            self._thread = None
            if self._serve_error is not None:
                error = self._serve_error
                self._serve_error = None
                raise RuntimeError("the service daemon crashed") from error
            if self._errors:
                errors = dict(self._errors)
                self._errors.clear()
                failures = ", ".join(sorted(errors))
                raise RuntimeError(
                    f"{len(errors)} session(s) failed: {failures}"
                ) from next(iter(errors.values()))
            return self.results()

    # -- daemon internals ----------------------------------------------------
    def _make_executor(self) -> Executor:
        if self.executor_kind == "process":
            context = self.mp_context or multiprocessing.get_context("spawn")
            # Pre-warm each worker with the registry jobs known right now;
            # sessions submitted to the live daemon later fall back to the
            # lazy per-worker cache inside _run_registry_job.
            names = tuple(sorted({
                record.job_ref
                for record in self._records.values()
                if record.job_ref is not None
            }))
            return ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=context,
                initializer=_warm_worker if names else None,
                initargs=(names,) if names else (),
            )
        return ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="repro-service-worker"
        )

    def _autosave_loop(self) -> None:
        """Periodically checkpoint the registry until shutdown, then once more.

        With a journal configured each tick is a *compaction* — snapshot plus
        journal rotation — so restart replay cost stays bounded by one
        interval's worth of journal, not the daemon's lifetime.  A failing
        save is recorded on ``self._autosave_error`` and retried at the next
        tick — persistence trouble (disk full, permissions) must degrade
        durability, not availability; a later success clears the error and
        stamps ``last_autosave_at``.
        """
        while True:
            stopped = self._autosave_stop.wait(self.autosave_interval_s)
            started = time.perf_counter()
            try:
                self.compact_journal(self.autosave_path, skip_unspecced=True)
                with self._lock:
                    self._autosave_error = None
                    self._last_autosave_at = time.time()
            except Exception as error:
                with self._lock:
                    self._autosave_error = error
                self._m_autosave_failures.inc()
            self._m_autosave.observe(time.perf_counter() - started)
            if stopped:
                return

    def _serve_loop(self) -> None:
        try:
            with self._wakeup:
                while True:
                    self._process_completions_locked()
                    if not (self._stop and not self._drain_on_stop):
                        self._dispatch_ready_locked()
                    if self._completed:
                        continue  # outcomes arrived while dispatching
                    # Session state may just have changed (tells, terminal
                    # transitions): wake long-poll waiters before parking.
                    self._wakeup.notify_all()
                    if self._n_inflight:
                        self._wakeup.wait()  # a completion callback will notify
                    elif self._stop:
                        break
                    else:
                        self._wakeup.wait()  # idle: wait for submit/cancel/shutdown
        except BaseException as error:  # pragma: no cover - defensive
            with self._lock:
                self._serve_error = error
        finally:
            with self._wakeup:
                executor = self._executor
                self._executor = None
            # Shut down outside the lock: done-callbacks take it to record
            # completions, so holding it here would deadlock the join.
            if executor is not None:
                executor.shutdown(wait=True)
            with self._wakeup:
                self._serving = False
                self._wakeup.notify_all()

    def _dispatchable_locked(self) -> list[_SessionRecord]:
        dispatchable = []
        for record in self._records.values():
            session = record.session
            if session.status.terminal:
                continue
            if record.inflight is not None:
                continue
            if session.state is not None and session.state.pending is not None:
                continue
            if record.batch and len(record.batch) >= len(session.state.bootstrap_queue):
                continue  # bootstrap fully dispatched; wait for in-order tells
            dispatchable.append(record)
        return dispatchable

    def _dispatch_ready_locked(self) -> None:
        while self._n_inflight < self.n_workers:
            dispatchable = self._dispatchable_locked()
            if not dispatchable:
                break
            by_id = {record.session.session_id: record for record in dispatchable}
            session = self.policy.select([record.session for record in dispatchable])
            self._m_picks.inc(policy=self.policy.name, tenant=session.tenant or "")
            self._dispatch_one_locked(by_id[session.session_id])

    def _fail_session_locked(self, record: _SessionRecord, error: BaseException) -> None:
        """One session's failure must not take down the daemon or its peers."""
        self._errors[record.session.session_id] = error
        if record.session.cancel():
            self._journal_transition_locked(record, "cancel")
        record.session.discard_pending()
        self._refresh_clean_checkpoint_locked(record)

    def _dispatch_one_locked(self, record: _SessionRecord) -> None:
        try:
            self._dispatch_one_inner_locked(record)
        except Exception as error:
            self._fail_session_locked(record, error)

    def _dispatch_one_inner_locked(self, record: _SessionRecord) -> None:
        session = record.session
        if self.bootstrap_parallel:
            batch = session.bootstrap_batch()
            if len(record.batch) < len(batch):
                dispatch = _Dispatch(record, batch[len(record.batch)], batched=True)
                record.batch.append(dispatch)
                self._submit_run_locked(dispatch)
                return
            # A fully-dispatched batch is filtered out by _dispatchable_locked;
            # falling through to ask() here would double-dispatch a bootstrap
            # config, so guard the invariant loudly.
            assert not record.batch, "dispatch requested while bootstrap batch in flight"
        config = session.ask()
        if config is None:
            # The session just went terminal; the ready set re-evaluates.
            self._journal_transition_locked(record, "finish")
            return
        dispatch = _Dispatch(record, config, batched=False)
        record.inflight = dispatch
        self._submit_run_locked(dispatch)

    def _submit_run_locked(self, dispatch: _Dispatch) -> None:
        job = dispatch.record.session.job
        if self.executor_kind == "process":
            if dispatch.record.job_ref is not None:
                # Ship only the registry name; the worker's per-process cache
                # holds (or lazily rebuilds) the identical table.
                future = self._executor.submit(
                    _run_registry_job, dispatch.record.job_ref, dispatch.config
                )
            else:
                future = self._executor.submit(_run_job, job, dispatch.config)
        else:
            future = self._executor.submit(job.run, dispatch.config)
        dispatch.future = future
        self._n_inflight += 1
        self._m_runs.inc(executor=self.executor_kind)
        self._m_inflight.set(self._n_inflight, executor=self.executor_kind)
        future.add_done_callback(
            lambda done, dispatch=dispatch: self._on_run_done(dispatch, done)
        )

    def _on_run_done(self, dispatch: _Dispatch, future: Future) -> None:
        # Runs on a pool/callback thread (or synchronously under the lock for
        # revoked futures — the lock is reentrant): no session state here,
        # just marshal the outcome and wake the scheduler.
        try:
            dispatch.outcome = future.result()
        except BaseException as error:
            dispatch.error = error
        with self._wakeup:
            self._completed.append(dispatch)
            self._wakeup.notify_all()

    def _process_completions_locked(self) -> None:
        while self._completed:
            dispatch = self._completed.popleft()
            self._n_inflight -= 1
            self._m_inflight.set(self._n_inflight, executor=self.executor_kind)
            record = dispatch.record
            session = record.session
            if not dispatch.batched:
                record.inflight = None
            if session.status == SessionStatus.CANCELLED:
                # Outcome of a revoked run: drop it without charging budget.
                if not dispatch.batched:
                    session.discard_pending()
                self._refresh_clean_checkpoint_locked(record)
                continue
            if dispatch.error is not None:
                self._fail_session_locked(record, dispatch.error)
                continue
            try:
                if dispatch.batched:
                    self._drain_batch_locked(record)
                else:
                    session.tell(dispatch.outcome)
                    self._journal_tell_locked(record, dispatch.config, dispatch.outcome)
                self._refresh_clean_checkpoint_locked(record)
            except Exception as error:
                self._fail_session_locked(record, error)

    def _refresh_clean_checkpoint_locked(self, record: _SessionRecord) -> None:
        """Re-capture a session's step-boundary snapshot after a tell.

        Keeps the periodic background save's view at most one profiling run
        behind the live session (see :meth:`_boundary_checkpoint_locked`).
        """
        session = record.session
        if session.state is not None and session.state.pending is None:
            record.clean_checkpoint = session.checkpoint()

    def _drain_batch_locked(self, record: _SessionRecord) -> None:
        # Bootstrap outcomes may complete out of order; tell them strictly in
        # queue order so the trace matches a serial run bit-for-bit.
        session = record.session
        while record.batch and record.batch[0].outcome is not None:
            slot = record.batch.popleft()
            config = session.ask()  # pops the queue head == slot.config
            assert config == slot.config, "bootstrap queue desynchronised"
            session.tell(slot.outcome)
            self._journal_tell_locked(record, slot.config, slot.outcome)
