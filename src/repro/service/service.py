"""The tuning service: N concurrent sessions over one worker pool.

:class:`TuningService` multiplexes many :class:`~repro.service.session.TuningSession`
objects.  Each session is strictly serial internally (ask → run → tell — every
decision conditions on all previous observations), so the service extracts
parallelism *across* sessions: while one session's profiling run executes on
the worker pool, the scheduler keeps advancing other sessions' decision-making
in the submitting thread.

With ``n_workers <= 1`` the service runs every profiling run inline, in pure
scheduling order, with no pool — execution is then fully deterministic and a
session produces exactly the result a bare ``optimizer.optimize()`` call
would.  With ``n_workers > 1`` a thread pool runs up to that many profiling
runs concurrently; per-session results are unchanged (each session still sees
its own serial history), only wall-clock time and the interleaving differ.

Jobs are expected to be safe to run concurrently with each other; the
tabulated replay jobs of this reproduction are pure lookups and qualify.
Stateful wrappers (e.g. ``SetupCostAwareJob``, whose provisioner tracks the
deployed cluster) should be multiplexed only with ``n_workers=1`` and one
wrapper instance per session.
"""

from __future__ import annotations

import copy
import itertools
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Any

from repro.core.optimizer import BaseOptimizer, OptimizationResult
from repro.service.scheduler import SchedulingPolicy, make_policy
from repro.service.session import SessionStatus, TuningSession
from repro.workloads.base import Job

__all__ = ["TuningService"]


class TuningService:
    """Drive many tuning sessions to completion.

    Parameters
    ----------
    n_workers:
        Maximum number of profiling runs in flight.  ``1`` (the default)
        disables the pool entirely and runs everything inline.
    policy:
        A :class:`~repro.service.scheduler.SchedulingPolicy` instance or the
        name of a built-in one (``"fifo"``, ``"round-robin"``,
        ``"cost-aware"``).
    copy_optimizers:
        When true (the default) :meth:`submit` deep-copies the optimizer so
        every session owns its instance; per-run mutable state (price caches,
        constraint metrics) must not be shared across concurrent sessions.
    """

    def __init__(
        self,
        *,
        n_workers: int = 1,
        policy: SchedulingPolicy | str = "fifo",
        copy_optimizers: bool = True,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        self.n_workers = n_workers
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.copy_optimizers = copy_optimizers
        self._sessions: dict[str, TuningSession] = {}
        self._ids = itertools.count()

    # -- submission and inspection ------------------------------------------
    def submit(
        self,
        job: Job,
        optimizer: BaseOptimizer,
        *,
        session_id: str | None = None,
        **options: Any,
    ) -> str:
        """Register a new tuning session and return its id.

        ``options`` are forwarded to
        :meth:`~repro.core.optimizer.BaseOptimizer.start` (``tmax``,
        ``budget``, ``budget_multiplier``, ``n_bootstrap``,
        ``initial_configs``, ``seed``).
        """
        if session_id is None:
            session_id = f"session-{next(self._ids)}"
        if session_id in self._sessions:
            raise ValueError(f"duplicate session id {session_id!r}")
        if self.copy_optimizers:
            optimizer = copy.deepcopy(optimizer)
        self._sessions[session_id] = TuningSession(
            session_id, job, optimizer, **options
        )
        return session_id

    def add_session(self, session: TuningSession) -> str:
        """Register an existing session object (e.g. one restored from a checkpoint)."""
        if session.session_id in self._sessions:
            raise ValueError(f"duplicate session id {session.session_id!r}")
        self._sessions[session.session_id] = session
        return session.session_id

    def get(self, session_id: str) -> TuningSession:
        """The session object behind ``session_id``."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"unknown session {session_id!r}") from None

    def poll(self, session_id: str) -> dict[str, Any]:
        """A JSON-safe progress snapshot of one session."""
        return self.get(session_id).metrics()

    def result(self, session_id: str) -> OptimizationResult:
        """The final result of a terminal session."""
        return self.get(session_id).result()

    @property
    def session_ids(self) -> list[str]:
        """All registered session ids, in submission order."""
        return list(self._sessions)

    def statuses(self) -> dict[str, SessionStatus]:
        """Status of every registered session."""
        return {sid: session.status for sid, session in self._sessions.items()}

    # -- execution ----------------------------------------------------------
    def _ready(self) -> list[TuningSession]:
        return [
            session
            for session in self._sessions.values()
            if not session.status.terminal
            and (session.state is None or session.state.pending is None)
        ]

    def step(self) -> bool:
        """Advance one scheduling decision inline (always serial).

        Returns ``False`` when every session is terminal.
        """
        ready = self._ready()
        if not ready:
            return False
        session = self.policy.select(ready)
        session.step()
        return True

    def drain(self) -> dict[str, OptimizationResult]:
        """Run every session to completion and return ``{session_id: result}``."""
        if self.n_workers == 1:
            while self.step():
                pass
        else:
            self._drain_pool()
        return {
            sid: session.result()
            for sid, session in self._sessions.items()
            if session.status.terminal
        }

    def _drain_pool(self) -> None:
        """Overlap profiling runs (pool) with decision-making (this thread)."""
        with ThreadPoolExecutor(max_workers=self.n_workers) as executor:
            in_flight: dict[Future, TuningSession] = {}
            while True:
                # Dispatch while there is pool capacity and a ready session.
                while len(in_flight) < self.n_workers:
                    ready = self._ready()
                    if not ready:
                        break
                    session = self.policy.select(ready)
                    config = session.ask()
                    if config is None:
                        continue  # session just went terminal
                    future = executor.submit(session.job.run, config)
                    in_flight[future] = session
                if not in_flight:
                    if not self._ready():
                        break
                    continue
                done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    session = in_flight.pop(future)
                    session.tell(future.result())
