"""Sampling substrates: Latin Hypercube bootstrap and Gauss-Hermite quadrature.

Lynceus bootstraps its model by profiling ``N`` configurations chosen with
Latin Hypercube Sampling (Algorithm 1, line 7) and discretises the Gaussian
cost distributions predicted during lookahead with Gauss-Hermite quadrature
(Section 4.2, approximation 3).  Both building blocks live here so they can
be tested and benchmarked independently of the optimizer.
"""

from repro.sampling.lhs import latin_hypercube_indices, latin_hypercube_sample
from repro.sampling.quadrature import GaussHermiteQuadrature, QuadratureNode

__all__ = [
    "GaussHermiteQuadrature",
    "QuadratureNode",
    "latin_hypercube_indices",
    "latin_hypercube_sample",
]
