"""Gauss-Hermite quadrature for discretising Gaussian predictive distributions.

During lookahead Lynceus must reason about the *distribution* of the cost of
a configuration it has not run yet.  The closed-form marginalisation over
that distribution is intractable (Section 4.2), so the paper discretises the
model's Gaussian prediction ``N(mu, sigma^2)`` into ``K`` weighted point
masses using Gauss-Hermite quadrature: for standard nodes ``z_i`` and weights
``w_i`` of the (physicists') Hermite rule,

    c_i = mu + sqrt(2) * sigma * z_i,      p_i = w_i / sqrt(pi),

and the ``p_i`` sum to one.  Each ``<c_i, p_i>`` pair spawns one simulated
sub-path in Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["QuadratureNode", "GaussHermiteQuadrature"]


@dataclass(frozen=True)
class QuadratureNode:
    """One ``<value, weight>`` pair produced by the quadrature."""

    value: float
    weight: float


@lru_cache(maxsize=32)
def _hermgauss(order: int) -> tuple[np.ndarray, np.ndarray]:
    nodes, weights = np.polynomial.hermite.hermgauss(order)
    return nodes, weights


class GaussHermiteQuadrature:
    """Discretise ``N(mu, sigma^2)`` into ``K`` weighted cost values.

    Parameters
    ----------
    order:
        Number of quadrature nodes ``K``.  The paper leaves K unspecified;
        our default of 5 matches common practice for lookahead BO and keeps
        the branching factor of the path simulation manageable (complexity
        grows as ``K^LA``).
    clip_to_positive:
        If true (default), negative cost values produced by wide predictive
        distributions are clipped to a small positive epsilon — monetary
        costs can never be negative.
    """

    def __init__(self, order: int = 5, *, clip_to_positive: bool = True) -> None:
        if order < 1:
            raise ValueError("quadrature order must be positive")
        self.order = order
        self.clip_to_positive = clip_to_positive
        nodes, weights = _hermgauss(order)
        self._std_nodes = nodes
        self._std_weights = weights / np.sqrt(np.pi)

    @property
    def standard_nodes(self) -> np.ndarray:
        """Quadrature nodes for the standard normal (already scaled by sqrt(2))."""
        return np.sqrt(2.0) * self._std_nodes

    @property
    def standard_weights(self) -> np.ndarray:
        """Probability weights associated with :attr:`standard_nodes` (sum to 1)."""
        return self._std_weights.copy()

    def discretise(self, mean: float, std: float) -> list[QuadratureNode]:
        """Return the ``K`` weighted values approximating ``N(mean, std^2)``.

        A degenerate distribution (``std == 0``) collapses to a single node
        with weight one.
        """
        if std < 0:
            raise ValueError("std must be non-negative")
        if std == 0.0:
            value = max(mean, 1e-12) if self.clip_to_positive else mean
            return [QuadratureNode(value=float(value), weight=1.0)]
        values = mean + np.sqrt(2.0) * std * self._std_nodes
        if self.clip_to_positive:
            values = np.maximum(values, 1e-12)
        return [
            QuadratureNode(value=float(v), weight=float(w))
            for v, w in zip(values, self._std_weights)
        ]

    def expectation(self, mean: float, std: float, func=None) -> float:
        """Approximate ``E[func(Y)]`` for ``Y ~ N(mean, std^2)``.

        With ``func=None`` this returns the mean itself (useful as a sanity
        check: the quadrature is exact for polynomials of degree < 2K).
        """
        nodes = self.discretise(mean, std)
        if func is None:
            return float(sum(n.value * n.weight for n in nodes))
        return float(sum(func(n.value) * n.weight for n in nodes))
