"""Latin Hypercube Sampling over mixed discrete/continuous configuration spaces.

Latin Hypercube Sampling (McKay et al., 1979) stratifies each dimension into
``n`` equal-probability bins and draws exactly one sample per bin per
dimension, then shuffles the bins independently across dimensions.  Compared
with uniform random sampling it guarantees good marginal coverage of every
dimension, which is why Lynceus (like CherryPick and ProteusTM) uses it to
pick the initial configurations that bootstrap the performance model.

Because the paper's spaces are finite grids — and, for the Scout and
CherryPick datasets, *restricted* grids where not every combination of the
full Cartesian product is admissible — the main entry point
:func:`latin_hypercube_sample` stratifies the index range of each parameter,
builds the ideal stratified point and then snaps it to the nearest admissible
candidate configuration (Euclidean distance in the normalised encoding),
de-duplicating the result.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.space import ConfigSpace, Configuration

__all__ = ["latin_hypercube_indices", "latin_hypercube_sample"]


def latin_hypercube_indices(
    n_samples: int, n_dims: int, rng: np.random.Generator
) -> np.ndarray:
    """Return an ``(n_samples, n_dims)`` array of stratified samples in [0, 1).

    Each column is a random permutation of the ``n_samples`` strata, with a
    uniform jitter inside each stratum.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be positive")
    if n_dims < 1:
        raise ValueError("n_dims must be positive")
    result = np.empty((n_samples, n_dims), dtype=float)
    for dim in range(n_dims):
        perm = rng.permutation(n_samples)
        jitter = rng.random(n_samples)
        result[:, dim] = (perm + jitter) / n_samples
    return result


def _normalised_encoding(space: ConfigSpace, configs: Sequence[Configuration]) -> np.ndarray:
    """Encode configurations and scale every dimension to [0, 1]."""
    X = space.encode_many(list(configs))
    lo = X.min(axis=0)
    span = X.max(axis=0) - lo
    span[span == 0.0] = 1.0
    return (X - lo) / span


def latin_hypercube_sample(
    space: ConfigSpace,
    n_samples: int,
    rng: np.random.Generator,
    *,
    candidates: Sequence[Configuration] | None = None,
    exclude: set[Configuration] | None = None,
) -> list[Configuration]:
    """Draw ``n_samples`` distinct configurations via LHS.

    Parameters
    ----------
    space:
        The configuration space (used for stratification and encoding).
    n_samples:
        Number of distinct configurations to return.
    rng:
        Random generator.
    candidates:
        The admissible configurations to draw from; defaults to the full
        Cartesian grid of ``space``.
    exclude:
        Configurations that must not be returned (e.g. already profiled).
    """
    if n_samples < 1:
        raise ValueError("n_samples must be positive")
    exclude = exclude or set()
    pool = list(candidates) if candidates is not None else space.enumerate()
    available = [c for c in pool if c not in exclude]
    if n_samples > len(available):
        raise ValueError(
            f"cannot draw {n_samples} distinct configurations from a space with "
            f"{len(available)} available points"
        )

    # Normalised encodings of the admissible candidates, for nearest-neighbour
    # snapping of the ideal stratified points.
    encoded = _normalised_encoding(space, available)

    unit = latin_hypercube_indices(n_samples, space.dimensions, rng)
    # Express the ideal stratified points in the same normalised encoding: the
    # stratum index along each dimension maps linearly onto the value range.
    ideal = np.empty_like(unit)
    for dim, param in enumerate(space.parameters):
        values = np.array([param.encode(v) for v in param.values], dtype=float)
        lo, hi = values.min(), values.max()
        span = hi - lo if hi > lo else 1.0
        idx = np.minimum((unit[:, dim] * len(values)).astype(int), len(values) - 1)
        ideal[:, dim] = (values[idx] - lo) / span
    # Re-normalise the ideal points with the candidate pool's ranges so both
    # live in the same [0, 1] box even for restricted candidate lists.
    chosen: list[Configuration] = []
    taken = np.zeros(len(available), dtype=bool)
    for row in ideal:
        distances = np.linalg.norm(encoded - row, axis=1)
        distances[taken] = np.inf
        pick = int(np.argmin(distances))
        taken[pick] = True
        chosen.append(available[pick])
    return chosen
