"""repro — a reproduction of Lynceus (ICDCS 2020).

Lynceus is a budget-aware, long-sighted Bayesian-optimization tool that finds
the cheapest cloud + application configuration for a recurring data-analytic
job, subject to a runtime constraint and a monetary budget for the search
itself.

The package is organised as follows:

``repro.core``
    The paper's primary contribution: the configuration-space abstractions,
    the optimizer state, the constrained expected-improvement acquisition,
    the Lynceus lookahead optimizer and the baselines it is compared against
    (CherryPick-style BO, random search, disjoint optimization).

``repro.learning``
    From-scratch regression substrates used as the black-box performance
    model: CART regression trees, a bagging ensemble with a Gaussian
    posterior, and a Gaussian-Process alternative.

``repro.sampling``
    Latin Hypercube Sampling for the bootstrap phase and Gauss-Hermite
    quadrature used to discretise predictive distributions during lookahead.

``repro.cloud``
    A simulated cloud substrate: VM catalogues, per-second pricing, cluster
    specifications and a provisioner with boot / setup latencies.

``repro.workloads``
    Analytic performance models and deterministic lookup-table datasets for
    the three workload suites of the paper (TensorFlow, Scout, CherryPick).

``repro.experiments``
    The evaluation harness: multi-seed runners, the CNO / NEX metrics and
    per-figure experiment drivers that regenerate every table and figure of
    the paper's evaluation section.

``repro.service``
    The multi-tenant layer above the ask/tell optimizer core: tuning
    sessions with lifecycle and JSON checkpoint/resume, pluggable scheduling
    policies, and a :class:`~repro.service.service.TuningService` that
    drives many sessions concurrently over a thread or process pool —
    batch (``drain``) or as a long-lived daemon (``serve``/``submit``/
    ``cancel``/``shutdown``).  Its public surface is a versioned wire
    protocol (``repro.service.api``): declarative
    :class:`~repro.service.api.JobSpec` submissions through a
    transport-agnostic :class:`~repro.service.client.TuningClient` — either
    in-process (:class:`~repro.service.client.LocalClient`) or over the REST
    gateway of ``python -m repro serve``
    (:class:`~repro.service.client.HttpClient`).
"""

from repro._version import __version__
from repro.core import (
    BayesianOptimizer,
    Configuration,
    ConfigSpace,
    LynceusOptimizer,
    OptimizationResult,
    RandomSearchOptimizer,
)
from repro.service import (
    HttpClient,
    JobSpec,
    LocalClient,
    OptimizerSpec,
    SessionStatus,
    TuningClient,
    TuningGateway,
    TuningService,
    TuningSession,
    run_sweep,
)
from repro.workloads import (
    cherrypick_suite,
    load_job,
    scout_suite,
    tensorflow_suite,
)

__all__ = [
    "__version__",
    "BayesianOptimizer",
    "ConfigSpace",
    "Configuration",
    "HttpClient",
    "JobSpec",
    "LocalClient",
    "LynceusOptimizer",
    "OptimizationResult",
    "OptimizerSpec",
    "RandomSearchOptimizer",
    "SessionStatus",
    "TuningClient",
    "TuningGateway",
    "TuningService",
    "TuningSession",
    "cherrypick_suite",
    "load_job",
    "run_sweep",
    "scout_suite",
    "tensorflow_suite",
]
