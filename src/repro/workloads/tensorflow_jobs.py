"""Simulated TensorFlow training jobs (the paper's primary dataset).

The paper's most challenging dataset profiles three neural-network training
jobs (Multilayer, CNN, RNN) on MNIST with TensorFlow's parameter-server
architecture on EC2.  The configuration space has five dimensions —
Table 1 (learning rate x batch size x sync/async) crossed with Table 2
(4 VM types x 8 cluster scales) — for 384 configurations per job.  A job
trains until it reaches 0.85 accuracy or a 10-minute timeout fires.

We do not have the original EC2 measurements, so this module substitutes an
analytic *parameter-server performance model* that reproduces the properties
the paper demonstrates and that the optimizers are sensitive to:

* the runtime of a configuration is the number of gradient updates needed to
  reach the target accuracy times the duration of one update;
* the number of updates depends on the learning rate, on the (effective)
  batch size and, for asynchronous training, on gradient staleness, which
  grows with the number of workers — this couples the hyper-parameters to the
  cluster shape and makes disjoint optimization sub-optimal (Fig. 1b);
* the duration of one update combines per-worker compute, worker <-> parameter
  server communication and, for synchronous training, stragglers plus the
  parameter-server aggregation bottleneck;
* configurations that do not converge within the 10-minute timeout are
  forcefully terminated and still charged, producing the three-orders-of-
  magnitude cost spread and the tiny set of near-optimal configurations of
  Fig. 1a.

A small deterministic, per-configuration noise term models measurement
variability while keeping dataset generation perfectly reproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.cloud.cluster import ClusterSpec
from repro.cloud.vm import get_vm_type
from repro.core.space import (
    CategoricalParameter,
    ConfigSpace,
    Configuration,
    OrdinalParameter,
)
from repro.workloads.base import ProfiledRun, TabulatedJob

__all__ = [
    "TENSORFLOW_JOB_NAMES",
    "TENSORFLOW_TIMEOUT_SECONDS",
    "NeuralNetworkProfile",
    "TENSORFLOW_PROFILES",
    "tensorflow_config_space",
    "make_tensorflow_job",
]

#: The three neural-network models trained in the paper.
TENSORFLOW_JOB_NAMES = ("cnn", "rnn", "multilayer")

#: Jobs are forcefully terminated after 10 minutes (Section 5.1.1).
TENSORFLOW_TIMEOUT_SECONDS = 600.0

#: Table 2 — VM types available to the TensorFlow jobs.
TENSORFLOW_VM_TYPES = ("t2.small", "t2.medium", "t2.xlarge", "t2.2xlarge")

#: Table 2 — each row keeps the total worker vCPU count in this set, so the
#: cloud dimension is (VM type, total vCPUs) and the grid is a clean product.
TENSORFLOW_TOTAL_VCPUS = (8, 16, 32, 48, 64, 80, 96, 112)

#: Table 1 — hyper-parameter grid.
TENSORFLOW_LEARNING_RATES = (1e-5, 1e-4, 1e-3)
TENSORFLOW_BATCH_SIZES = (16, 256)
TENSORFLOW_TRAINING_MODES = ("async", "sync")

#: MNIST training-set size, used to express convergence effort in examples.
_MNIST_TRAIN_EXAMPLES = 55_000


@dataclass(frozen=True)
class NeuralNetworkProfile:
    """Per-model coefficients of the parameter-server performance model.

    Attributes
    ----------
    name:
        Job name.
    compute_ms_per_example:
        CPU milliseconds needed to process one training example on one vCPU
        of the reference (t2.small) machine.
    model_mb:
        Size of the model parameters in MB; exchanged with the parameter
        server twice per update (gradient push + parameter pull).
    examples_to_converge:
        Training examples that must be processed to reach 0.85 accuracy with
        the best learning rate and no staleness.
    min_updates:
        Floor on the number of gradient updates (large batches cannot push
        the update count below this).
    staleness_penalty:
        Strength of the asynchronous-staleness effect per extra worker.
    sync_inefficiency:
        Extra fraction of examples needed per doubling of the effective
        (synchronous) batch beyond the critical batch size.
    """

    name: str
    compute_ms_per_example: float
    model_mb: float
    examples_to_converge: float
    min_updates: float
    staleness_penalty: float
    sync_inefficiency: float


#: Coefficients for the three models.  CNN: compute heavy, medium model.
#: RNN: sequential, expensive per example, communication-light but poorly
#: parallelisable.  Multilayer: small and cheap, converges quickly.
TENSORFLOW_PROFILES: dict[str, NeuralNetworkProfile] = {
    "cnn": NeuralNetworkProfile(
        name="cnn",
        compute_ms_per_example=4.0,
        model_mb=3.0,
        examples_to_converge=1.2 * _MNIST_TRAIN_EXAMPLES,
        min_updates=400.0,
        staleness_penalty=0.05,
        sync_inefficiency=0.18,
    ),
    "rnn": NeuralNetworkProfile(
        name="rnn",
        compute_ms_per_example=7.0,
        model_mb=1.5,
        examples_to_converge=0.9 * _MNIST_TRAIN_EXAMPLES,
        min_updates=600.0,
        staleness_penalty=0.08,
        sync_inefficiency=0.25,
    ),
    "multilayer": NeuralNetworkProfile(
        name="multilayer",
        compute_ms_per_example=1.0,
        model_mb=0.8,
        examples_to_converge=0.5 * _MNIST_TRAIN_EXAMPLES,
        min_updates=250.0,
        staleness_penalty=0.06,
        sync_inefficiency=0.12,
    ),
}

#: Relative single-thread speed of each VM type (larger instances get newer
#: silicon and suffer less CPU-steal).
_VM_SPEED = {
    "t2.small": 1.0,
    "t2.medium": 1.02,
    "t2.xlarge": 1.12,
    "t2.2xlarge": 1.18,
}

#: Per-update learning-rate efficiency: how many times more examples are
#: needed, relative to the best rate (1e-3), to reach the target accuracy.
_LR_EXAMPLE_FACTOR = {1e-3: 1.0, 1e-4: 3.0, 1e-5: 16.0}

#: Critical effective batch size beyond which larger batches stop reducing
#: the number of updates one-for-one.
_CRITICAL_BATCH = 512.0

#: Asynchronous training diverges (never reaches the target accuracy) when the
#: aggregate gradient staleness exceeds this threshold; the run then hits the
#: 10-minute timeout.  This captures the well-known instability of fully
#: asynchronous SGD with many workers and large step sizes, and is the main
#: source of interaction between the hyper-parameters and the cluster shape.
_ASYNC_DIVERGENCE_THRESHOLD = 1.2

#: Runtime assigned to runs that never converge (far beyond the timeout).
_DIVERGED_RUNTIME_SECONDS = 50_000.0


def tensorflow_config_space() -> ConfigSpace:
    """The 5-dimensional, 384-point configuration space of Tables 1 and 2."""
    return ConfigSpace(
        parameters=[
            CategoricalParameter("vm_type", TENSORFLOW_VM_TYPES),
            OrdinalParameter("total_vcpus", TENSORFLOW_TOTAL_VCPUS),
            OrdinalParameter("learning_rate", TENSORFLOW_LEARNING_RATES),
            OrdinalParameter("batch_size", TENSORFLOW_BATCH_SIZES),
            CategoricalParameter("training_mode", TENSORFLOW_TRAINING_MODES),
        ]
    )


def n_workers_of(config: Configuration) -> int:
    """Number of worker VMs implied by a TensorFlow configuration."""
    vm = get_vm_type(config["vm_type"])
    total_vcpus = int(config["total_vcpus"])
    if total_vcpus % vm.vcpus != 0:
        raise ValueError(
            f"total_vcpus={total_vcpus} is not a multiple of {vm.name}'s {vm.vcpus} vCPUs"
        )
    return total_vcpus // vm.vcpus


def cluster_of(config: Configuration) -> ClusterSpec:
    """Cluster spec of a TensorFlow configuration (workers + one PS node)."""
    vm_name = config["vm_type"]
    return ClusterSpec.of(vm_name, n_workers_of(config), master_vm_name=vm_name)


def _stable_noise(job_name: str, config: Configuration, scale: float) -> float:
    """Deterministic multiplicative noise in ``[1 - 3*scale, 1 + 3*scale]``.

    The noise is a pure function of the job name and configuration so the
    generated dataset is identical across processes and platforms.
    """
    key = f"{job_name}|{sorted(config.values)!r}".encode()
    seed = zlib.crc32(key)
    rng = np.random.default_rng(seed)
    return float(np.clip(rng.normal(1.0, scale), 1.0 - 3.0 * scale, 1.0 + 3.0 * scale))


def _updates_needed(profile: NeuralNetworkProfile, config: Configuration) -> float:
    """Gradient updates required to reach the target accuracy."""
    lr = float(config["learning_rate"])
    batch = float(config["batch_size"])
    mode = config["training_mode"]
    n_workers = n_workers_of(config)

    examples = profile.examples_to_converge * _LR_EXAMPLE_FACTOR[lr]

    if mode == "sync":
        # Synchronous training aggregates one gradient per worker per update,
        # so the effective batch is batch * N.  Beyond the critical batch the
        # extra examples are increasingly wasted.
        effective_batch = batch * n_workers
        if effective_batch > _CRITICAL_BATCH:
            waste = 1.0 + profile.sync_inefficiency * np.log2(effective_batch / _CRITICAL_BATCH)
            examples *= waste
        updates = examples / effective_batch
    else:
        # Asynchronous training applies each worker's gradient independently;
        # stale gradients hurt more with more workers and with larger steps,
        # and beyond a threshold the run never reaches the target accuracy.
        staleness_coefficient = (
            profile.staleness_penalty * (n_workers - 1) * np.sqrt(lr / 1e-3)
        )
        if staleness_coefficient > _ASYNC_DIVERGENCE_THRESHOLD:
            return np.inf
        examples *= 1.0 + staleness_coefficient
        updates = examples / batch

    return max(updates, profile.min_updates)


def _update_seconds(profile: NeuralNetworkProfile, config: Configuration) -> float:
    """Wall-clock seconds consumed per gradient update (cluster-wide)."""
    vm = get_vm_type(config["vm_type"])
    batch = float(config["batch_size"])
    mode = config["training_mode"]
    n_workers = n_workers_of(config)

    speed = _VM_SPEED[vm.name]
    # Per-worker compute for one mini-batch: data-parallel across the VM's
    # vCPUs with a mild intra-VM parallelisation penalty.
    intra_vm_eff = 1.0 / (1.0 + 0.06 * (vm.vcpus - 1))
    compute_s = (
        profile.compute_ms_per_example * batch / 1000.0 / (vm.vcpus * speed * intra_vm_eff)
    )
    # Worker <-> parameter-server traffic: gradients up, parameters down.
    worker_net_mbps = vm.network_gbps * 1000.0 / 8.0
    comm_s = 2.0 * profile.model_mb / worker_net_mbps
    # The parameter server is one VM of the same type; its NIC must serve all
    # workers.
    ps_net_mbps = vm.network_gbps * 1000.0 / 8.0
    ps_service_s = 2.0 * profile.model_mb / ps_net_mbps

    if mode == "sync":
        # One update = every worker computes + communicates, the slowest
        # worker (straggler) gates the barrier, and the PS aggregates the N
        # contributions hierarchically (tree reduction).
        straggler = 1.0 + 0.07 * np.log2(max(n_workers, 1))
        aggregation_s = ps_service_s * np.log2(n_workers + 1)
        return (compute_s + comm_s) * straggler + aggregation_s
    # Asynchronous: updates stream from all workers concurrently; throughput
    # is bounded by the workers and by the PS service rate.
    worker_rate = n_workers / (compute_s + comm_s)
    ps_rate = 1.0 / ps_service_s
    return 1.0 / min(worker_rate, ps_rate)


def simulate_runtime_seconds(job_name: str, config: Configuration) -> float:
    """Uncapped runtime of ``job_name`` on ``config`` under the analytic model."""
    profile = TENSORFLOW_PROFILES[job_name]
    updates = _updates_needed(profile, config)
    if not np.isfinite(updates):
        return _DIVERGED_RUNTIME_SECONDS
    seconds_per_update = _update_seconds(profile, config)
    startup_s = 8.0 + 0.15 * n_workers_of(config)  # graph build + session setup
    runtime = startup_s + updates * seconds_per_update
    return runtime * _stable_noise(job_name, config, scale=0.03)


def make_tensorflow_job(name: str) -> TabulatedJob:
    """Generate the full 384-point profiling table for one TensorFlow job.

    Parameters
    ----------
    name:
        One of ``"cnn"``, ``"rnn"`` or ``"multilayer"``.
    """
    if name not in TENSORFLOW_PROFILES:
        raise ValueError(
            f"unknown TensorFlow job {name!r}; expected one of {TENSORFLOW_JOB_NAMES}"
        )
    space = tensorflow_config_space()
    runs = []
    for config in space.enumerate():
        cluster = cluster_of(config)
        runtime = simulate_runtime_seconds(name, config)
        runs.append(
            ProfiledRun(
                config=config,
                runtime_seconds=runtime,
                unit_price_per_hour=cluster.total_price_per_hour,
            )
        )
    return TabulatedJob(
        name=f"tensorflow-{name}",
        _space=space,
        runs=runs,
        timeout_seconds=TENSORFLOW_TIMEOUT_SECONDS,
        metadata={"suite": "tensorflow", "model": name},
    )
