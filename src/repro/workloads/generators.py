"""Synthetic job generators for testing and for users' own experiments.

The property-based tests and several examples need cheap, arbitrary cost
surfaces over small configuration spaces.  :func:`make_synthetic_job` builds
a :class:`~repro.workloads.base.TabulatedJob` from a seeded random surface
with controllable ruggedness, and :func:`make_quadratic_job` builds a smooth
bowl-shaped surface with a known optimum — handy when a test needs to check
that an optimizer converges to a specific configuration.
"""

from __future__ import annotations

import numpy as np

from repro.core.space import CategoricalParameter, ConfigSpace, OrdinalParameter
from repro.workloads.base import ProfiledRun, TabulatedJob

__all__ = ["make_synthetic_job", "make_quadratic_job", "synthetic_space"]


def synthetic_space(
    n_numeric: int = 2, numeric_levels: int = 4, n_categorical: int = 1, categories: int = 3
) -> ConfigSpace:
    """A small mixed discrete space for tests.

    Parameters default to a 4x4x3 = 48-point space, big enough to be
    interesting and small enough for fast property-based testing.
    """
    params = []
    for i in range(n_numeric):
        params.append(OrdinalParameter(f"x{i}", [float(v) for v in range(1, numeric_levels + 1)]))
    for j in range(n_categorical):
        params.append(CategoricalParameter(f"c{j}", [f"option{k}" for k in range(categories)]))
    return ConfigSpace(parameters=params)


def make_synthetic_job(
    seed: int = 0,
    *,
    space: ConfigSpace | None = None,
    runtime_range: tuple[float, float] = (30.0, 3000.0),
    unit_price_range: tuple[float, float] = (0.1, 2.0),
    ruggedness: float = 0.5,
    timeout_seconds: float | None = None,
    name: str | None = None,
) -> TabulatedJob:
    """Build a random but reproducible lookup-table job.

    The runtime surface is a mixture of a smooth component (a random linear /
    interaction function of the encoded features) and log-uniform noise whose
    share is controlled by ``ruggedness`` in ``[0, 1]``.
    """
    if not 0.0 <= ruggedness <= 1.0:
        raise ValueError("ruggedness must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    space = space if space is not None else synthetic_space()
    configs = space.enumerate()
    X = space.encode_many(configs)
    # Standardise features so random weights affect each dimension equally.
    mean = X.mean(axis=0)
    scale = np.where(X.std(axis=0) > 0, X.std(axis=0), 1.0)
    Z = (X - mean) / scale

    weights = rng.normal(size=Z.shape[1])
    pair = rng.normal(size=(Z.shape[1], Z.shape[1]))
    smooth = Z @ weights + 0.4 * np.einsum("ij,jk,ik->i", Z, pair, Z)
    smooth = (smooth - smooth.min()) / (np.ptp(smooth) + 1e-12)

    noise = rng.random(len(configs))
    mix = (1.0 - ruggedness) * smooth + ruggedness * noise

    lo_t, hi_t = runtime_range
    runtimes = np.exp(np.log(lo_t) + mix * (np.log(hi_t) - np.log(lo_t)))
    prices = rng.uniform(unit_price_range[0], unit_price_range[1], size=len(configs))

    runs = [
        ProfiledRun(config=c, runtime_seconds=float(t), unit_price_per_hour=float(p))
        for c, t, p in zip(configs, runtimes, prices)
    ]
    return TabulatedJob(
        name=name or f"synthetic-{seed}",
        _space=space,
        runs=runs,
        timeout_seconds=timeout_seconds,
        metadata={"suite": "synthetic", "seed": seed},
    )


def make_quadratic_job(
    *,
    space: ConfigSpace | None = None,
    optimum: dict | None = None,
    base_runtime: float = 60.0,
    curvature: float = 40.0,
    unit_price_per_hour: float = 1.0,
    name: str = "quadratic",
) -> TabulatedJob:
    """A smooth bowl-shaped job whose cheapest configuration is known.

    The runtime of a configuration grows quadratically with its (encoded)
    distance from ``optimum``; all configurations share the same unit price,
    so the cheapest configuration is exactly the one closest to ``optimum``.
    """
    space = space if space is not None else synthetic_space()
    configs = space.enumerate()
    if optimum is None:
        optimum_config = configs[len(configs) // 2]
    else:
        optimum_config = space.make(**optimum)
    target = space.encode(optimum_config)
    scale = np.where(space.encode_many(configs).std(axis=0) > 0,
                     space.encode_many(configs).std(axis=0), 1.0)

    runs = []
    for config in configs:
        delta = (space.encode(config) - target) / scale
        runtime = base_runtime + curvature * float(delta @ delta)
        runs.append(
            ProfiledRun(
                config=config,
                runtime_seconds=runtime,
                unit_price_per_hour=unit_price_per_hour,
            )
        )
    return TabulatedJob(
        name=name,
        _space=space,
        runs=runs,
        timeout_seconds=None,
        metadata={"suite": "synthetic", "optimum": optimum_config.as_dict()},
    )
