"""Job abstractions.

From the optimizer's point of view a *job* is a black box: given a
configuration it returns the time the job took and the money it cost, nothing
else.  The evaluation in the paper is trace-driven — each job was profiled
once on every configuration of its grid and the optimizers replay that table
— so the central concrete class here is :class:`TabulatedJob`, a job backed
by a complete ``configuration -> (runtime, unit price)`` lookup table.

The module also provides the derived quantities the experiment harness needs:
the optimal (cheapest feasible) configuration, the mean per-run cost ``m̃``
used to size the budget ``B = N * m̃ * b``, and the default time constraint
``Tmax`` chosen so that roughly half of the configurations satisfy it
(Section 5.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.space import ConfigSpace, Configuration

__all__ = ["JobOutcome", "Job", "TabulatedJob", "ProfiledRun"]


@dataclass(frozen=True)
class JobOutcome:
    """The observable result of running a job once on some configuration.

    Attributes
    ----------
    runtime_seconds:
        Wall-clock duration of the run.  If the run hit the job's timeout the
        duration equals the timeout.
    cost:
        Money charged for the run (timeout runs are still charged).
    timed_out:
        Whether the run was forcefully terminated at the timeout.
    """

    runtime_seconds: float
    cost: float
    timed_out: bool = False

    def __post_init__(self) -> None:
        if self.runtime_seconds < 0:
            raise ValueError("runtime_seconds must be non-negative")
        if self.cost < 0:
            raise ValueError("cost must be non-negative")


@dataclass(frozen=True)
class ProfiledRun:
    """One row of a profiling table: a configuration and its measured outcome."""

    config: Configuration
    runtime_seconds: float
    unit_price_per_hour: float

    @property
    def cost(self) -> float:
        """Cost of the run under per-second billing."""
        return self.runtime_seconds * self.unit_price_per_hour / 3600.0


class Job:
    """Abstract job interface used by all optimizers.

    Concrete jobs must expose the configuration space (for feature
    encoding), the list of admissible configurations (the ground set ``T`` of
    unexplored configurations), the *a-priori known* unit price of every
    configuration, and :meth:`run`.
    """

    #: Concrete jobs must set a human-readable name.
    name: str

    @property
    def space(self) -> ConfigSpace:
        """The configuration space used to encode features."""
        raise NotImplementedError

    @property
    def configurations(self) -> list[Configuration]:
        """All admissible configurations (may be a subset of the full grid)."""
        raise NotImplementedError

    def unit_price_per_hour(self, config: Configuration) -> float:
        """Hourly price of the cloud resources behind ``config`` (known a priori)."""
        raise NotImplementedError

    def run(self, config: Configuration) -> JobOutcome:
        """Run the job on ``config`` and return the measured outcome."""
        raise NotImplementedError

    # -- derived helpers, shared by all implementations ------------------------
    def outcome_table(self) -> dict[Configuration, JobOutcome]:
        """Outcomes for every admissible configuration (runs them all)."""
        return {config: self.run(config) for config in self.configurations}

    def costs(self) -> np.ndarray:
        """Per-configuration costs, in :attr:`configurations` order."""
        return np.array([self.run(c).cost for c in self.configurations])

    def runtimes(self) -> np.ndarray:
        """Per-configuration runtimes, in :attr:`configurations` order."""
        return np.array([self.run(c).runtime_seconds for c in self.configurations])

    def mean_cost(self) -> float:
        """Average cost of a single profiling run (``m̃`` in the paper)."""
        return float(np.mean(self.costs()))

    def default_tmax(self) -> float:
        """Time constraint satisfied by roughly half of the configurations."""
        return float(np.median(self.runtimes()))

    def feasible_configurations(self, tmax: float) -> list[Configuration]:
        """Configurations whose run finishes within ``tmax`` (and did not time out)."""
        feasible = []
        for config in self.configurations:
            outcome = self.run(config)
            if not outcome.timed_out and outcome.runtime_seconds <= tmax:
                feasible.append(config)
        return feasible

    def optimal(self, tmax: float) -> tuple[Configuration, float]:
        """The cheapest feasible configuration and its cost.

        Raises ``ValueError`` if no configuration meets the constraint.
        """
        best_config: Configuration | None = None
        best_cost = np.inf
        for config in self.configurations:
            outcome = self.run(config)
            if outcome.timed_out or outcome.runtime_seconds > tmax:
                continue
            if outcome.cost < best_cost:
                best_cost = outcome.cost
                best_config = config
        if best_config is None:
            raise ValueError(
                f"no configuration of job {self.name!r} satisfies Tmax={tmax}"
            )
        return best_config, float(best_cost)

    def optimal_cost(self, tmax: float) -> float:
        """Cost of the optimal feasible configuration."""
        return self.optimal(tmax)[1]


@dataclass
class TabulatedJob(Job):
    """A job backed by a complete profiling table.

    This mirrors the paper's trace-driven methodology: every configuration of
    the grid was profiled once, and optimizer runs replay the table.  The
    table also gives the simulated cloud measurements produced by the
    workload models in :mod:`repro.workloads.tensorflow_jobs` and
    :mod:`repro.workloads.hadoop_spark`.
    """

    name: str
    _space: ConfigSpace
    runs: list[ProfiledRun]
    timeout_seconds: float | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.runs:
            raise ValueError(f"job {self.name!r} has an empty profiling table")
        self._table: dict[Configuration, ProfiledRun] = {}
        for run in self.runs:
            if run.config in self._table:
                raise ValueError(f"duplicate configuration in table of job {self.name!r}")
            self._space.validate(run.config)
            self._table[run.config] = run

    # -- Job interface ------------------------------------------------------
    @property
    def space(self) -> ConfigSpace:
        return self._space

    @property
    def configurations(self) -> list[Configuration]:
        return [run.config for run in self.runs]

    def unit_price_per_hour(self, config: Configuration) -> float:
        return self._lookup(config).unit_price_per_hour

    def run(self, config: Configuration) -> JobOutcome:
        profiled = self._lookup(config)
        runtime = profiled.runtime_seconds
        timed_out = False
        if self.timeout_seconds is not None and runtime >= self.timeout_seconds:
            runtime = self.timeout_seconds
            timed_out = True
        cost = runtime * profiled.unit_price_per_hour / 3600.0
        return JobOutcome(runtime_seconds=runtime, cost=cost, timed_out=timed_out)

    # -- helpers ----------------------------------------------------------------
    def _lookup(self, config: Configuration) -> ProfiledRun:
        try:
            return self._table[config]
        except KeyError:
            raise KeyError(
                f"configuration {config!r} is not part of job {self.name!r}'s table"
            ) from None

    def __len__(self) -> int:
        return len(self.runs)

    def subset(self, configs: Iterable[Configuration]) -> "TabulatedJob":
        """A new job restricted to the given configurations."""
        wanted = set(configs)
        runs = [run for run in self.runs if run.config in wanted]
        return TabulatedJob(
            name=self.name,
            _space=self._space,
            runs=runs,
            timeout_seconds=self.timeout_seconds,
            metadata=dict(self.metadata),
        )
