"""Simulated Hadoop / Spark jobs (the Scout and CherryPick datasets).

The paper's second and third datasets come from prior work: 18 HiBench /
spark-perf jobs profiled by Scout and 5 analytics jobs (TPC-H, TPC-DS,
TeraSort, Spark KMeans, Spark Regression) profiled by CherryPick, both on EC2
clusters whose configuration space has three dimensions — VM family, VM size
and cluster size.

As with the TensorFlow dataset we substitute an analytic performance model
for the original EC2 traces.  Each job is described by a resource profile
(compute work, shuffle volume, input size, memory working set, serial
fraction) and its runtime on a cluster combines:

* Amdahl-style compute scaling over the cluster's total cores, with
  per-family core speeds (c4 > r4/m4 > r3/i2);
* an all-to-all shuffle phase bounded by the cluster's aggregate network
  bandwidth, with a coordination overhead that grows with cluster size;
* an input-scan phase bounded by aggregate local-storage throughput (which
  is where the storage-optimised i2 family shines);
* a memory-pressure penalty when the job's working set does not fit in the
  cluster's aggregate memory, multiplying the shuffle and I/O phases —
  which is where the memory-optimised r3/r4 families shine.

Different jobs therefore favour different VM families and cluster sizes,
reproducing the heterogeneity that makes the Scout / CherryPick comparison
interesting, while the smaller 3-dimensional space keeps the optimization
problem easier than the TensorFlow one (as the paper observes in Sec. 6.1).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.cloud.vm import VMType, get_vm_type
from repro.core.space import (
    CategoricalParameter,
    ConfigSpace,
    Configuration,
    OrdinalParameter,
)
from repro.workloads.base import ProfiledRun, TabulatedJob

__all__ = [
    "AnalyticJobProfile",
    "SCOUT_JOB_NAMES",
    "CHERRYPICK_JOB_NAMES",
    "scout_config_space",
    "cherrypick_config_space",
    "make_scout_job",
    "make_cherrypick_job",
]

#: Scout grid (Section 5.1.2): three families, three sizes, machine counts up
#: to 48 (capped at 24 for xlarge and 12 for 2xlarge instances).
SCOUT_VM_FAMILIES = ("c4", "m4", "r4")
SCOUT_VM_SIZES = ("large", "xlarge", "2xlarge")
SCOUT_MACHINE_COUNTS = (4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48)
_SCOUT_MAX_COUNT_PER_SIZE = {"large": 48, "xlarge": 24, "2xlarge": 12}

#: CherryPick grid (Section 5.1.2): four families, three sizes; cluster scale
#: expressed as total worker vCPUs as in the TensorFlow dataset.
CHERRYPICK_VM_FAMILIES = ("c4", "m4", "r3", "i2")
CHERRYPICK_VM_SIZES = ("large", "xlarge", "2xlarge")
CHERRYPICK_TOTAL_VCPUS = (32, 48, 64, 80, 96, 112)

_VCPUS_PER_SIZE = {"large": 2, "xlarge": 4, "2xlarge": 8}

#: Relative single-core speed of each family.
_FAMILY_CORE_SPEED = {"c4": 1.30, "m4": 1.00, "r4": 1.05, "r3": 0.92, "i2": 0.92}


@dataclass(frozen=True)
class AnalyticJobProfile:
    """Resource profile of one Hadoop/Spark job.

    Attributes
    ----------
    name:
        Job name.
    engine:
        ``"hadoop"`` or ``"spark"`` (Spark jobs pay a larger memory-pressure
        penalty because they lose cached RDDs, Hadoop jobs a smaller one).
    input_gb:
        Input data scanned from storage.
    cpu_core_hours:
        Total compute work, in core-hours on a reference (m4) core.
    shuffle_gb:
        Data exchanged all-to-all between the map and reduce stages.
    memory_working_set_gb:
        Aggregate memory needed to keep intermediate data resident.
    serial_fraction:
        Fraction of the compute work that does not parallelise.
    """

    name: str
    engine: str
    input_gb: float
    cpu_core_hours: float
    shuffle_gb: float
    memory_working_set_gb: float
    serial_fraction: float


def _p(name, engine, input_gb, cpu, shuffle, mem, serial) -> AnalyticJobProfile:
    return AnalyticJobProfile(
        name=name,
        engine=engine,
        input_gb=input_gb,
        cpu_core_hours=cpu,
        shuffle_gb=shuffle,
        memory_working_set_gb=mem,
        serial_fraction=serial,
    )


#: The 18 Scout jobs (HiBench Hadoop workloads + spark-perf workloads).
SCOUT_PROFILES: dict[str, AnalyticJobProfile] = {
    p.name: p
    for p in [
        _p("hadoop-wordcount", "hadoop", 300.0, 9.0, 15.0, 60.0, 0.03),
        _p("hadoop-sort", "hadoop", 200.0, 5.0, 200.0, 180.0, 0.02),
        _p("hadoop-terasort", "hadoop", 300.0, 8.0, 300.0, 260.0, 0.02),
        _p("hadoop-kmeans", "hadoop", 100.0, 14.0, 25.0, 120.0, 0.05),
        _p("hadoop-bayes", "hadoop", 120.0, 10.0, 40.0, 110.0, 0.04),
        _p("hadoop-pagerank", "hadoop", 80.0, 12.0, 90.0, 160.0, 0.06),
        _p("hadoop-nutchindexing", "hadoop", 150.0, 7.0, 60.0, 90.0, 0.05),
        _p("hadoop-join", "hadoop", 180.0, 6.0, 120.0, 150.0, 0.03),
        _p("hadoop-scan", "hadoop", 250.0, 3.0, 10.0, 40.0, 0.02),
        _p("hadoop-aggregation", "hadoop", 220.0, 5.0, 30.0, 70.0, 0.03),
        _p("spark-als", "spark", 60.0, 16.0, 35.0, 200.0, 0.08),
        _p("spark-kmeans", "spark", 90.0, 13.0, 20.0, 170.0, 0.06),
        _p("spark-lr", "spark", 110.0, 11.0, 15.0, 150.0, 0.05),
        _p("spark-pagerank", "spark", 70.0, 12.0, 110.0, 220.0, 0.07),
        _p("spark-terasort", "spark", 280.0, 7.0, 280.0, 300.0, 0.02),
        _p("spark-sort", "spark", 180.0, 4.5, 180.0, 210.0, 0.02),
        _p("spark-wordcount", "spark", 280.0, 8.0, 12.0, 55.0, 0.03),
        _p("spark-naive-bayes", "spark", 130.0, 9.0, 30.0, 140.0, 0.05),
    ]
}

#: The 5 CherryPick jobs.
CHERRYPICK_PROFILES: dict[str, AnalyticJobProfile] = {
    p.name: p
    for p in [
        _p("tpch", "spark", 350.0, 22.0, 160.0, 420.0, 0.05),
        _p("tpcds", "spark", 420.0, 28.0, 220.0, 520.0, 0.06),
        _p("terasort", "hadoop", 500.0, 14.0, 500.0, 600.0, 0.02),
        _p("spark-kmeans", "spark", 160.0, 26.0, 40.0, 380.0, 0.07),
        _p("spark-regression", "spark", 200.0, 20.0, 30.0, 320.0, 0.06),
    ]
}

SCOUT_JOB_NAMES = tuple(SCOUT_PROFILES)
CHERRYPICK_JOB_NAMES = tuple(CHERRYPICK_PROFILES)

#: Per-job exclusions shrinking the CherryPick spaces to 47-72 points, as in
#: the paper ("the configuration space is not the same for all jobs").
_CHERRYPICK_EXCLUSIONS: dict[str, set[tuple[str, str]]] = {
    "tpch": set(),
    "tpcds": {("i2", "large")},
    "terasort": {("m4", "large"), ("m4", "xlarge")},
    "spark-kmeans": {("i2", "large"), ("i2", "xlarge"), ("i2", "2xlarge")},
    "spark-regression": {
        ("i2", "large"),
        ("i2", "xlarge"),
        ("i2", "2xlarge"),
        ("r3", "large"),
    },
}


# ---------------------------------------------------------------------------
# configuration spaces
# ---------------------------------------------------------------------------

def scout_config_space() -> ConfigSpace:
    """The 3-dimensional Scout configuration space (full product grid)."""
    return ConfigSpace(
        parameters=[
            CategoricalParameter("vm_family", SCOUT_VM_FAMILIES),
            CategoricalParameter("vm_size", SCOUT_VM_SIZES),
            OrdinalParameter("n_machines", SCOUT_MACHINE_COUNTS),
        ]
    )


def cherrypick_config_space() -> ConfigSpace:
    """The 3-dimensional CherryPick configuration space (full product grid)."""
    return ConfigSpace(
        parameters=[
            CategoricalParameter("vm_family", CHERRYPICK_VM_FAMILIES),
            CategoricalParameter("vm_size", CHERRYPICK_VM_SIZES),
            OrdinalParameter("total_vcpus", CHERRYPICK_TOTAL_VCPUS),
        ]
    )


def _scout_valid_configs(space: ConfigSpace) -> list[Configuration]:
    configs = []
    for config in space.enumerate():
        if config["n_machines"] <= _SCOUT_MAX_COUNT_PER_SIZE[config["vm_size"]]:
            configs.append(config)
    return configs


def _cherrypick_valid_configs(space: ConfigSpace, job_name: str) -> list[Configuration]:
    excluded = _CHERRYPICK_EXCLUSIONS.get(job_name, set())
    configs = []
    for config in space.enumerate():
        if (config["vm_family"], config["vm_size"]) in excluded:
            continue
        configs.append(config)
    return configs


# ---------------------------------------------------------------------------
# analytic runtime model
# ---------------------------------------------------------------------------

def _vm_of(family: str, size: str) -> VMType:
    return get_vm_type(f"{family}.{size}")


def _cluster_shape(config: Configuration) -> tuple[VMType, int]:
    """Resolve a Scout/CherryPick configuration to (vm type, machine count)."""
    vm = _vm_of(config["vm_family"], config["vm_size"])
    if "n_machines" in config:
        n = int(config["n_machines"])
    else:
        total_vcpus = int(config["total_vcpus"])
        n = max(1, total_vcpus // vm.vcpus)
    return vm, n


def _stable_noise(job_name: str, config: Configuration, scale: float) -> float:
    key = f"{job_name}|{sorted(config.values)!r}".encode()
    rng = np.random.default_rng(zlib.crc32(key))
    return float(np.clip(rng.normal(1.0, scale), 1.0 - 3.0 * scale, 1.0 + 3.0 * scale))


def simulate_analytics_runtime(profile: AnalyticJobProfile, config: Configuration) -> float:
    """Runtime in seconds of a Hadoop/Spark job on a cluster configuration."""
    vm, n_machines = _cluster_shape(config)
    total_cores = vm.vcpus * n_machines
    total_memory_gb = vm.memory_gb * n_machines
    core_speed = _FAMILY_CORE_SPEED[vm.family]

    # -- compute: Amdahl over the cluster's cores --------------------------
    work_core_seconds = profile.cpu_core_hours * 3600.0
    serial_s = profile.serial_fraction * work_core_seconds / core_speed
    parallel_s = (
        (1.0 - profile.serial_fraction) * work_core_seconds / (total_cores * core_speed)
    )

    # -- memory pressure -----------------------------------------------------
    # When the working set exceeds ~80% of aggregate memory the job spills to
    # disk: Spark jobs lose cached RDDs and pay more than Hadoop jobs.
    usable_memory = 0.8 * total_memory_gb
    pressure = profile.memory_working_set_gb / max(usable_memory, 1e-9)
    if pressure > 1.0:
        spill_strength = 2.2 if profile.engine == "spark" else 1.2
        spill_factor = 1.0 + spill_strength * (pressure - 1.0)
    else:
        spill_factor = 1.0

    # -- shuffle: all-to-all over the aggregate network ------------------------
    aggregate_net_gbps = vm.network_gbps * n_machines
    shuffle_efficiency = 1.0 / (1.0 + 0.015 * n_machines)
    shuffle_s = (
        profile.shuffle_gb * 8.0 / (aggregate_net_gbps * shuffle_efficiency)
    ) * spill_factor

    # -- input scan over aggregate local storage -------------------------------
    aggregate_io_gbps = vm.io_mbps * n_machines / 1000.0
    scan_s = (profile.input_gb / aggregate_io_gbps) * (spill_factor if pressure > 1.0 else 1.0)

    # -- framework overhead ------------------------------------------------------
    startup_s = 18.0 + 0.6 * n_machines

    runtime = startup_s + serial_s + parallel_s + shuffle_s + scan_s
    return runtime * _stable_noise(profile.name, config, scale=0.04)


# ---------------------------------------------------------------------------
# job factories
# ---------------------------------------------------------------------------

def _make_job(
    suite: str,
    profile: AnalyticJobProfile,
    space: ConfigSpace,
    configs: list[Configuration],
) -> TabulatedJob:
    runs = []
    for config in configs:
        vm, n_machines = _cluster_shape(config)
        runtime = simulate_analytics_runtime(profile, config)
        runs.append(
            ProfiledRun(
                config=config,
                runtime_seconds=runtime,
                unit_price_per_hour=vm.price_per_hour * n_machines,
            )
        )
    return TabulatedJob(
        name=f"{suite}-{profile.name}",
        _space=space,
        runs=runs,
        timeout_seconds=None,
        metadata={"suite": suite, "engine": profile.engine},
    )


def make_scout_job(name: str) -> TabulatedJob:
    """Generate the profiling table for one of the 18 Scout jobs."""
    if name not in SCOUT_PROFILES:
        raise ValueError(f"unknown Scout job {name!r}; expected one of {SCOUT_JOB_NAMES}")
    space = scout_config_space()
    configs = _scout_valid_configs(space)
    return _make_job("scout", SCOUT_PROFILES[name], space, configs)


def make_cherrypick_job(name: str) -> TabulatedJob:
    """Generate the profiling table for one of the 5 CherryPick jobs."""
    if name not in CHERRYPICK_PROFILES:
        raise ValueError(
            f"unknown CherryPick job {name!r}; expected one of {CHERRYPICK_JOB_NAMES}"
        )
    space = cherrypick_config_space()
    configs = _cherrypick_valid_configs(space, name)
    return _make_job("cherrypick", CHERRYPICK_PROFILES[name], space, configs)
