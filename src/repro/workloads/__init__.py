"""Workload suites: the three datasets of the paper plus synthetic generators.

The top-level helpers mirror the evaluation setup of Section 5:

* :func:`tensorflow_suite` — the three TensorFlow jobs (CNN, RNN, Multilayer)
  over the 384-point, 5-dimensional grid of Tables 1–2;
* :func:`scout_suite` — the 18 Hadoop/Spark jobs of the Scout dataset over a
  3-dimensional cluster grid;
* :func:`cherrypick_suite` — the 5 jobs of the CherryPick dataset;
* :func:`load_job` — load any single job by its fully-qualified name, e.g.
  ``"tensorflow-cnn"`` or ``"scout-spark-kmeans"``.

All datasets are generated deterministically by analytic performance models
(see DESIGN.md for the substitution rationale), so every call returns
identical tables.
"""

from __future__ import annotations

from repro.workloads.base import Job, JobOutcome, ProfiledRun, TabulatedJob
from repro.workloads.generators import make_quadratic_job, make_synthetic_job, synthetic_space
from repro.workloads.hadoop_spark import (
    CHERRYPICK_JOB_NAMES,
    SCOUT_JOB_NAMES,
    cherrypick_config_space,
    make_cherrypick_job,
    make_scout_job,
    scout_config_space,
)
from repro.workloads.tensorflow_jobs import (
    TENSORFLOW_JOB_NAMES,
    make_tensorflow_job,
    tensorflow_config_space,
)

__all__ = [
    "Job",
    "JobOutcome",
    "ProfiledRun",
    "TabulatedJob",
    "TENSORFLOW_JOB_NAMES",
    "SCOUT_JOB_NAMES",
    "CHERRYPICK_JOB_NAMES",
    "tensorflow_suite",
    "scout_suite",
    "cherrypick_suite",
    "load_job",
    "available_jobs",
    "make_tensorflow_job",
    "make_scout_job",
    "make_cherrypick_job",
    "make_synthetic_job",
    "make_quadratic_job",
    "synthetic_space",
    "tensorflow_config_space",
    "scout_config_space",
    "cherrypick_config_space",
]


def tensorflow_suite() -> list[TabulatedJob]:
    """The three TensorFlow jobs of Section 5.1.1 (CNN, RNN, Multilayer)."""
    return [make_tensorflow_job(name) for name in TENSORFLOW_JOB_NAMES]


def scout_suite() -> list[TabulatedJob]:
    """The 18 Hadoop/Spark jobs of the Scout dataset."""
    return [make_scout_job(name) for name in SCOUT_JOB_NAMES]


def cherrypick_suite() -> list[TabulatedJob]:
    """The 5 jobs of the CherryPick dataset."""
    return [make_cherrypick_job(name) for name in CHERRYPICK_JOB_NAMES]


def available_jobs() -> list[str]:
    """Fully-qualified names accepted by :func:`load_job`."""
    names = [f"tensorflow-{n}" for n in TENSORFLOW_JOB_NAMES]
    names += [f"scout-{n}" for n in SCOUT_JOB_NAMES]
    names += [f"cherrypick-{n}" for n in CHERRYPICK_JOB_NAMES]
    return names


def load_job(qualified_name: str) -> TabulatedJob:
    """Load a single job by fully-qualified name.

    Examples: ``"tensorflow-cnn"``, ``"scout-hadoop-terasort"``,
    ``"cherrypick-tpch"``.
    """
    if qualified_name.startswith("tensorflow-"):
        return make_tensorflow_job(qualified_name.removeprefix("tensorflow-"))
    if qualified_name.startswith("scout-"):
        return make_scout_job(qualified_name.removeprefix("scout-"))
    if qualified_name.startswith("cherrypick-"):
        return make_cherrypick_job(qualified_name.removeprefix("cherrypick-"))
    raise ValueError(
        f"unknown job {qualified_name!r}; available jobs: {available_jobs()}"
    )
