"""Virtual-machine catalogue.

The catalogue mirrors the EC2 instance types used in the paper's three
datasets:

* TensorFlow jobs (Table 2): burstable ``t2`` family — t2.small, t2.medium,
  t2.xlarge, t2.2xlarge.
* Scout jobs (Section 5.1.2): compute/memory/general-purpose families
  ``c4``, ``r4``, ``m4`` in sizes large, xlarge, 2xlarge.
* CherryPick jobs (Section 5.1.2): ``c4``, ``m4``, ``r3``, ``i2`` in sizes
  large, xlarge, 2xlarge.

The hourly prices are the 2018 us-east-1 on-demand list prices (rounded).
Absolute values do not matter for the reproduction — only the relative price
structure across instance types does — but keeping realistic numbers makes
the generated cost surfaces realistic too.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VMType", "VM_CATALOG", "get_vm_type", "family_of", "size_of"]


@dataclass(frozen=True)
class VMType:
    """A virtual-machine flavour.

    Attributes
    ----------
    name:
        EC2-style instance name, e.g. ``"c4.xlarge"``.
    vcpus:
        Number of virtual CPUs.
    memory_gb:
        RAM in GiB.
    price_per_hour:
        On-demand hourly list price in USD.
    network_gbps:
        Nominal network bandwidth in Gbit/s (used by the performance models
        to decide when jobs become network-bound).
    io_mbps:
        Nominal local-storage throughput in MB/s (relevant for the
        storage-optimised i2 family and shuffle-heavy jobs).
    """

    name: str
    vcpus: int
    memory_gb: float
    price_per_hour: float
    network_gbps: float = 1.0
    io_mbps: float = 100.0

    @property
    def price_per_second(self) -> float:
        """Per-second price under per-second billing."""
        return self.price_per_hour / 3600.0

    @property
    def family(self) -> str:
        """The instance family, e.g. ``"c4"`` for ``"c4.xlarge"``."""
        return self.name.split(".", 1)[0]

    @property
    def size(self) -> str:
        """The instance size, e.g. ``"xlarge"`` for ``"c4.xlarge"``."""
        return self.name.split(".", 1)[1]


def _vm(name, vcpus, mem, price, net, io) -> VMType:
    return VMType(
        name=name,
        vcpus=vcpus,
        memory_gb=mem,
        price_per_hour=price,
        network_gbps=net,
        io_mbps=io,
    )


#: The full catalogue keyed by instance name.
VM_CATALOG: dict[str, VMType] = {
    vm.name: vm
    for vm in [
        # --- burstable (TensorFlow dataset, Table 2) -------------------------
        _vm("t2.small", 1, 2.0, 0.023, 0.8, 80.0),
        _vm("t2.medium", 2, 4.0, 0.0464, 0.8, 80.0),
        _vm("t2.xlarge", 4, 16.0, 0.1856, 1.0, 100.0),
        _vm("t2.2xlarge", 8, 32.0, 0.3712, 1.0, 100.0),
        # --- compute optimised ------------------------------------------------
        _vm("c4.large", 2, 3.75, 0.100, 1.0, 120.0),
        _vm("c4.xlarge", 4, 7.5, 0.199, 1.5, 120.0),
        _vm("c4.2xlarge", 8, 15.0, 0.398, 2.0, 150.0),
        # --- general purpose --------------------------------------------------
        _vm("m4.large", 2, 8.0, 0.100, 0.9, 110.0),
        _vm("m4.xlarge", 4, 16.0, 0.200, 1.2, 110.0),
        _vm("m4.2xlarge", 8, 32.0, 0.400, 1.8, 130.0),
        # --- memory optimised (current generation) ----------------------------
        _vm("r4.large", 2, 15.25, 0.133, 1.0, 110.0),
        _vm("r4.xlarge", 4, 30.5, 0.266, 1.5, 110.0),
        _vm("r4.2xlarge", 8, 61.0, 0.532, 2.0, 130.0),
        # --- memory optimised (previous generation, CherryPick) ---------------
        _vm("r3.large", 2, 15.25, 0.166, 0.8, 200.0),
        _vm("r3.xlarge", 4, 30.5, 0.333, 1.0, 250.0),
        _vm("r3.2xlarge", 8, 61.0, 0.665, 1.5, 300.0),
        # --- storage optimised (CherryPick) ------------------------------------
        _vm("i2.large", 2, 15.25, 0.213, 0.8, 400.0),
        _vm("i2.xlarge", 4, 30.5, 0.853 / 2, 1.0, 500.0),
        _vm("i2.2xlarge", 8, 61.0, 0.853, 1.5, 600.0),
    ]
}


def get_vm_type(name: str) -> VMType:
    """Look up a VM type by name, raising ``KeyError`` with guidance if absent."""
    try:
        return VM_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown VM type {name!r}; known types: {sorted(VM_CATALOG)}"
        ) from None


def family_of(name: str) -> str:
    """Return the family component of an instance name."""
    return get_vm_type(name).family


def size_of(name: str) -> str:
    """Return the size component of an instance name."""
    return get_vm_type(name).size
