"""A simulated cloud provisioner.

The setup-cost extension of Lynceus (Section 4.4) accounts for the money
spent while new VMs boot, data is re-loaded and the deployed system warms up
when switching from one configuration to the next.  This module provides a
deterministic, seedable simulation of that machinery: it tracks which cluster
is currently deployed, charges boot / data-loading time when the cluster
changes, and produces an event log that the examples and tests can inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.cluster import ClusterSpec
from repro.cloud.pricing import BillingModel, PerSecondBilling

__all__ = ["ProvisionEvent", "SimulatedProvisioner"]


@dataclass(frozen=True)
class ProvisionEvent:
    """One provisioning action recorded by the simulator."""

    action: str
    cluster: ClusterSpec
    setup_seconds: float
    setup_cost: float


@dataclass
class SimulatedProvisioner:
    """Tracks the deployed cluster and charges configuration-switch costs.

    Parameters
    ----------
    billing:
        Billing model used to translate setup time into money.
    boot_seconds_per_vm:
        Boot latency charged for every *newly started* VM.
    data_load_seconds:
        Time to load the job's input data onto a freshly booted cluster.
    jitter:
        Relative standard deviation of multiplicative noise applied to setup
        latencies (0 disables noise).
    seed:
        Seed for the jitter noise.
    """

    billing: BillingModel = field(default_factory=PerSecondBilling)
    boot_seconds_per_vm: float = 45.0
    data_load_seconds: float = 30.0
    jitter: float = 0.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.boot_seconds_per_vm < 0 or self.data_load_seconds < 0:
            raise ValueError("setup latencies must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        self._rng = np.random.default_rng(self.seed)
        self._current: ClusterSpec | None = None
        self._events: list[ProvisionEvent] = []
        self._total_setup_cost = 0.0

    # -- state -------------------------------------------------------------
    @property
    def current_cluster(self) -> ClusterSpec | None:
        """The cluster currently deployed, or ``None`` before the first deploy."""
        return self._current

    @property
    def events(self) -> list[ProvisionEvent]:
        """The provisioning event log."""
        return list(self._events)

    @property
    def total_setup_cost(self) -> float:
        """Total money spent on setup (booting + data loading) so far."""
        return self._total_setup_cost

    # -- behaviour -----------------------------------------------------------
    def estimate_switch_seconds(self, target: ClusterSpec) -> float:
        """Setup seconds required to switch from the current cluster to ``target``.

        Re-using the exact same cluster costs nothing; growing a cluster of
        the same VM type only boots the additional VMs; changing VM type
        reboots everything and reloads the data.
        """
        current = self._current
        if current is not None and current == target:
            return 0.0
        if current is not None and current.vm_type == target.vm_type:
            extra = max(0, target.n_workers - current.n_workers)
            boot = self.boot_seconds_per_vm * extra
            # Data is already resident on the surviving VMs; only new VMs load.
            load = self.data_load_seconds * (extra / max(target.n_workers, 1))
            return boot + load
        return self.boot_seconds_per_vm * target.n_vms + self.data_load_seconds

    def estimate_switch_cost(self, target: ClusterSpec) -> float:
        """Monetary cost of the switch, at the target cluster's unit price."""
        seconds = self.estimate_switch_seconds(target)
        return self.billing.cost(target, seconds)

    def deploy(self, target: ClusterSpec) -> ProvisionEvent:
        """Deploy ``target``, recording and charging the setup cost."""
        seconds = self.estimate_switch_seconds(target)
        if self.jitter > 0 and seconds > 0:
            seconds *= float(max(0.0, self._rng.normal(1.0, self.jitter)))
        cost = self.billing.cost(target, seconds)
        action = "reuse" if seconds == 0 else ("resize" if self._current and self._current.vm_type == target.vm_type else "boot")
        event = ProvisionEvent(action=action, cluster=target, setup_seconds=seconds, setup_cost=cost)
        self._events.append(event)
        self._total_setup_cost += cost
        self._current = target
        return event

    def teardown(self) -> None:
        """Release the currently deployed cluster."""
        self._current = None
