"""Cluster specifications.

A cluster in the Lynceus setting is ``N`` worker VMs of a single type, plus
(for parameter-server workloads such as the TensorFlow jobs) one extra VM
hosting the parameter server.  The specification exposes the aggregate
resources the workload performance models need (total vCPUs, total memory,
aggregate network bandwidth) and the total hourly price the billing model
needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.vm import VMType, get_vm_type

__all__ = ["ClusterSpec"]


@dataclass(frozen=True)
class ClusterSpec:
    """An homogeneous cluster of worker VMs with an optional master node.

    Attributes
    ----------
    vm_type:
        The worker VM flavour.
    n_workers:
        Number of worker VMs (``N`` in the paper's notation).
    master_vm_type:
        VM flavour of the extra master / parameter-server node, or ``None``
        when the workload has no dedicated master (Hadoop/Spark datasets in
        the paper count only the workers).
    """

    vm_type: VMType
    n_workers: int
    master_vm_type: VMType | None = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("a cluster needs at least one worker")

    # -- constructors -----------------------------------------------------
    @classmethod
    def of(
        cls, vm_name: str, n_workers: int, *, master_vm_name: str | None = None
    ) -> "ClusterSpec":
        """Build a cluster spec from instance-type names."""
        master = get_vm_type(master_vm_name) if master_vm_name else None
        return cls(vm_type=get_vm_type(vm_name), n_workers=n_workers, master_vm_type=master)

    # -- aggregate resources ------------------------------------------------
    @property
    def n_vms(self) -> int:
        """Total number of VMs including the master, if any."""
        return self.n_workers + (1 if self.master_vm_type is not None else 0)

    @property
    def total_vcpus(self) -> int:
        """Total worker vCPUs (the master does not contribute compute)."""
        return self.vm_type.vcpus * self.n_workers

    @property
    def total_memory_gb(self) -> float:
        """Total worker memory in GiB."""
        return self.vm_type.memory_gb * self.n_workers

    @property
    def aggregate_network_gbps(self) -> float:
        """Aggregate worker network bandwidth in Gbit/s."""
        return self.vm_type.network_gbps * self.n_workers

    @property
    def total_price_per_hour(self) -> float:
        """Hourly price of all VMs, master included."""
        price = self.vm_type.price_per_hour * self.n_workers
        if self.master_vm_type is not None:
            price += self.master_vm_type.price_per_hour
        return price

    @property
    def price_per_second(self) -> float:
        """Per-second price of the whole cluster."""
        return self.total_price_per_hour / 3600.0

    def describe(self) -> str:
        """Human-readable one-line description."""
        master = (
            f" + 1x {self.master_vm_type.name} (master)" if self.master_vm_type else ""
        )
        return f"{self.n_workers}x {self.vm_type.name}{master}"
