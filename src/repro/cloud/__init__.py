"""Simulated cloud substrate.

The paper runs its jobs on AWS EC2; this package models the parts of EC2 the
optimizer interacts with, so the whole evaluation can run on a laptop:

* :mod:`repro.cloud.vm` — the VM catalogue (t2.*, c4.*, m4.*, r4.*, r3.*,
  i2.* families with vCPU / RAM figures and hourly list prices).
* :mod:`repro.cloud.pricing` — per-second billing semantics, giving the unit
  price ``U(x)`` used in ``C(x) = T(x) * U(x)``.
* :mod:`repro.cloud.cluster` — cluster specifications (``N`` workers of a VM
  type plus an optional parameter-server/master node).
* :mod:`repro.cloud.provisioner` — a simulated provisioner with boot and
  data-loading latencies, used by the setup-cost extension of Section 4.4.
"""

from repro.cloud.cluster import ClusterSpec
from repro.cloud.pricing import BillingModel, PerSecondBilling
from repro.cloud.provisioner import ProvisionEvent, SimulatedProvisioner
from repro.cloud.vm import VM_CATALOG, VMType, get_vm_type

__all__ = [
    "BillingModel",
    "ClusterSpec",
    "PerSecondBilling",
    "ProvisionEvent",
    "SimulatedProvisioner",
    "VM_CATALOG",
    "VMType",
    "get_vm_type",
]
