"""Billing models.

The paper assumes the pay-by-the-second pricing scheme now standard on the
major clouds (Section 2), so the cost of running a job is simply
``C(x) = T(x) * U(x)`` where ``U(x)`` is the cluster's price per unit of
time.  :class:`PerSecondBilling` implements exactly that;
:class:`PerHourBilling` (rounding the billed duration up to whole hours) is
provided for completeness and for sensitivity experiments, since the coarser
granularity noticeably distorts the cost surface for short jobs.
"""

from __future__ import annotations

import math

from repro.cloud.cluster import ClusterSpec

__all__ = ["BillingModel", "PerSecondBilling", "PerHourBilling"]


class BillingModel:
    """Maps a cluster and a runtime to a monetary cost."""

    def unit_price_per_hour(self, cluster: ClusterSpec) -> float:
        """Price of keeping ``cluster`` running for one hour."""
        raise NotImplementedError

    def cost(self, cluster: ClusterSpec, runtime_seconds: float) -> float:
        """Cost of running ``cluster`` for ``runtime_seconds``."""
        raise NotImplementedError


class PerSecondBilling(BillingModel):
    """Per-second billing with an optional minimum billed duration.

    Parameters
    ----------
    minimum_seconds:
        Minimum billed duration per VM (AWS bills at least 60 s for Linux
        instances); defaults to 0 for a pure linear model, which is what the
        paper's formulation ``C(x) = T(x) * U(x)`` assumes.
    """

    def __init__(self, minimum_seconds: float = 0.0) -> None:
        if minimum_seconds < 0:
            raise ValueError("minimum_seconds must be non-negative")
        self.minimum_seconds = minimum_seconds

    def unit_price_per_hour(self, cluster: ClusterSpec) -> float:
        return cluster.total_price_per_hour

    def cost(self, cluster: ClusterSpec, runtime_seconds: float) -> float:
        if runtime_seconds < 0:
            raise ValueError("runtime_seconds must be non-negative")
        billed = max(runtime_seconds, self.minimum_seconds)
        return cluster.total_price_per_hour * billed / 3600.0


class PerHourBilling(BillingModel):
    """Legacy per-hour billing: durations are rounded up to whole hours."""

    def unit_price_per_hour(self, cluster: ClusterSpec) -> float:
        return cluster.total_price_per_hour

    def cost(self, cluster: ClusterSpec, runtime_seconds: float) -> float:
        if runtime_seconds < 0:
            raise ValueError("runtime_seconds must be non-negative")
        hours = math.ceil(runtime_seconds / 3600.0) if runtime_seconds > 0 else 0
        return cluster.total_price_per_hour * hours
