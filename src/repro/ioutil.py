"""Crash-safe file I/O primitives shared by every persistence layer.

The write-then-rename idiom alone is *not* atomic on a real filesystem: on
ext4/xfs the rename can be journalled to disk before the file's data blocks,
so a power loss shortly after ``os.replace`` may surface an empty or
truncated "committed" file.  Durable commit therefore needs three steps —
write, ``flush()`` + ``fsync()`` the file, then rename (and, best-effort,
fsync the directory so the rename itself is durable).  :func:`atomic_write`
and :func:`atomic_write_json` implement exactly that sequence, and every
checkpoint writer in the repo (service registry, session checkpoints, the
write-ahead journal's rotation, benchmark results) goes through them.

Scratch files get a unique name per call (``tempfile.mkstemp`` in the target
directory), so concurrent writers — e.g. a manual ``save_registry`` racing
the autosave thread — can never interleave bytes into one shared ``.tmp``
file; last rename wins with each rename publishing a complete file.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, IO

__all__ = ["fsync_handle", "fsync_dir", "atomic_write", "atomic_write_json"]


def fsync_handle(handle: IO) -> None:
    """Force buffered writes on ``handle`` down to the disk, not just the OS."""
    handle.flush()
    os.fsync(handle.fileno())


def fsync_dir(path: str | Path) -> None:
    """Best-effort fsync of a directory (makes a rename inside it durable).

    Some platforms/filesystems refuse to open directories for fsync; a
    failure here downgrades durability of the *rename* (the file contents
    are already synced), so it is deliberately non-fatal.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write(
    path: str | Path, write: Callable[[IO[str]], None], *, encoding: str = "utf-8"
) -> Path:
    """Atomically and durably replace ``path`` with what ``write`` produces.

    ``write`` receives a text handle for a unique scratch file in the target
    directory; the scratch is flushed, fsynced and renamed over ``path``
    only after ``write`` returns.  On any failure the scratch is removed and
    the previous ``path`` (if any) is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, scratch = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            write(handle)
            fsync_handle(handle)
        os.replace(scratch, path)
    except BaseException:
        try:
            os.unlink(scratch)
        except OSError:
            pass
        raise
    fsync_dir(path.parent)
    return path


def atomic_write_json(path: str | Path, payload: Any, *, indent: int | None = 2) -> Path:
    """Atomically and durably write ``payload`` as JSON to ``path``."""
    return atomic_write(path, lambda handle: json.dump(payload, handle, indent=indent))
